"""Calibration model math, reports, determinism and drift findings."""

import json

import pytest

from repro.native import is_supported
from repro.obs.calibration import (
    CalibrationModel,
    build_report,
    findings_from_payload,
    run_calibration_session,
    strip_wall_fields,
)
from repro.obs.calibration.model import KIND_CONSTANTS
from repro.obs.observer import Observer
from repro.vm.cost import CostLedger, CostParameters

native_only = pytest.mark.skipif(
    not is_supported(), reason="native rewiring unsupported on this platform"
)


# -- KindStats / CalibrationModel math ----------------------------------------


def test_ratio_and_slope_agree_on_perfectly_linear_data():
    model = CalibrationModel()
    for sim in (100.0, 200.0, 400.0):
        model.record("scan", sim, sim * 3.0)
    stats = model.kinds()["scan"]
    assert stats.ratio == pytest.approx(3.0)
    assert stats.slope == pytest.approx(3.0)
    # perfect estimator agreement: confidence is the pure size term
    assert stats.confidence == pytest.approx(3 / 11)


def test_scattered_ratios_drag_confidence_down():
    linear = CalibrationModel()
    noisy = CalibrationModel()
    for sim in (100.0, 200.0, 400.0):
        linear.record("scan", sim, sim * 3.0)
    noisy.record("scan", 100.0, 900.0)
    noisy.record("scan", 200.0, 200.0)
    noisy.record("scan", 400.0, 400.0)
    assert (
        noisy.kinds()["scan"].confidence < linear.kinds()["scan"].confidence
    )


def test_zero_sim_observations_are_dropped():
    model = CalibrationModel()
    model.record("route", 0.0, 5000.0)
    assert "route" not in model.kinds()


def test_findings_fire_only_outside_threshold_band():
    model = CalibrationModel()
    for sim in (100.0, 200.0, 400.0):
        model.record("scan", sim, sim * 1.4)  # inside [1/1.5, 1.5]
        model.record("map-pages", sim, sim * 2.0)  # outside
    findings = model.findings(threshold=0.5)
    assert [f.kind for f in findings] == ["map-pages"]
    finding = findings[0]
    assert finding.direction == "slow"
    assert finding.ratio == pytest.approx(2.0)


def test_findings_symmetric_for_too_fast_kinds():
    model = CalibrationModel()
    for sim in (100.0, 200.0, 400.0):
        model.record("scan", sim, sim * 0.4)  # below 1/1.5
    (finding,) = model.findings(threshold=0.5)
    assert finding.direction == "fast"


def test_findings_need_min_spans():
    model = CalibrationModel()
    model.record("scan", 100.0, 1000.0)
    model.record("scan", 100.0, 1000.0)
    assert model.findings(threshold=0.5) == []


def test_suggestions_rescale_the_kind_constants():
    params = CostParameters()
    model = CalibrationModel(params)
    for sim in (100.0, 200.0, 400.0):
        model.record("scan", sim, sim * 2.0)
    (finding,) = model.findings(threshold=0.5)
    assert set(finding.suggestions) == set(KIND_CONSTANTS["scan"])
    assert finding.suggestions["seq_value_read_ns"] == pytest.approx(
        params.seq_value_read_ns * 2.0, abs=1e-4
    )


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        CalibrationModel().findings(threshold=0.0)


# -- publishing through an observer -------------------------------------------


def test_publish_sets_gauge_and_raises_drift_events():
    model = CalibrationModel()
    for sim in (100.0, 200.0, 400.0):
        model.record("scan", sim, sim * 2.0)
        model.record("route", sim, sim * 1.0)
    observer = Observer(CostLedger())
    drift_events = []
    observer.events.subscribe("obs.cost_drift", drift_events.append)
    findings = model.publish(observer, threshold=0.5)
    assert [f.kind for f in findings] == ["scan"]
    assert len(drift_events) == 1
    assert drift_events[0].payload["kind"] == "scan"
    # the gauge carries every kind with data, not only drifting ones
    gauge = observer.metrics.get("cost_drift_ratio")
    samples = {
        frozenset(labels): value for labels, value in gauge.samples()
    }
    assert samples[frozenset({("span", "scan")})] == pytest.approx(2.0)
    assert samples[frozenset({("span", "route")})] == pytest.approx(1.0)


# -- report payload and determinism -------------------------------------------


def test_report_payload_isolates_wall_content():
    model = CalibrationModel()
    for sim in (100.0, 200.0, 400.0):
        model.record("scan", sim, sim * 2.0)
    report = build_report(
        model, backend="native", threshold=0.5,
        wall_ops={"mmap": {"ns": 1.0, "calls": 2}}, meta={"seed": 7},
    )
    payload = report.to_payload()
    assert payload["findings"]
    assert payload["wall"]["ops"]
    core = strip_wall_fields(payload)
    assert "findings" not in core
    assert "wall" not in core
    assert core["kinds"][0]["kind"] == "scan"
    assert "wall" not in core["kinds"][0]
    # rehydration round-trips the findings list
    assert findings_from_payload(payload) == report.findings


def test_simulated_backend_report_is_empty_but_renders():
    run = run_calibration_session(
        num_pages=64, num_queries=4, backend="simulated", seed=11
    )
    assert run.paired_spans == 0
    assert run.report.kinds == []
    assert "native backend" in run.report.render()


@native_only
def test_native_session_pairs_every_span_kind():
    run = run_calibration_session(
        num_pages=128, num_queries=8, backend="native", seed=11
    )
    assert run.paired_spans > 0
    kinds = {entry["kind"] for entry in run.report.kinds}
    assert {"query", "scan", "map-pages"} <= kinds
    assert run.report.to_payload()["wall"]["ops"]


@native_only
def test_calibration_json_is_deterministic_modulo_wall_fields(tmp_path):
    # The contract covers *sessions*, i.e. fresh processes: the native
    # maps-parse charge counts the kernel's VMAs for the substrate's own
    # files, and the kernel's VMA merging depends on process address-
    # space history — identical only across identically-fresh processes.
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    payloads = []
    for name in ("a.json", "b.json"):
        out = tmp_path / name
        subprocess.run(
            [
                sys.executable, "-m", "repro", "calibrate",
                "--pages", "128", "--queries", "8", "--seed", "11",
                "--json", str(out),
            ],
            check=True, env=env, cwd=tmp_path, capture_output=True,
        )
        payloads.append(
            json.dumps(
                strip_wall_fields(json.loads(out.read_text())),
                sort_keys=True,
            )
        )
    assert payloads[0] == payloads[1]

"""Tracer and span semantics: nesting, durations, ring truncation."""

import pytest

from repro.obs.span import Tracer
from repro.vm.cost import MAIN_LANE, MAPPER_LANE, CostLedger


def test_span_duration_equals_lane_charge():
    ledger = CostLedger()
    tracer = Tracer(ledger)
    with tracer.span("work") as span:
        ledger.charge(1500.0)
    assert span.finished
    assert span.duration_ns == 1500.0
    assert span.lane_deltas == {MAIN_LANE: 1500.0}


def test_span_never_charges_the_ledger():
    ledger = CostLedger()
    tracer = Tracer(ledger)
    with tracer.span("outer", hint=1):
        with tracer.span("inner"):
            pass
    assert ledger.lanes() == {}
    assert ledger.counters() == {}


def test_nesting_builds_parent_child_tree():
    ledger = CostLedger()
    tracer = Tracer(ledger)
    with tracer.span("query") as root:
        with tracer.span("route"):
            pass
        with tracer.span("scan") as scan:
            with tracer.span("scan-view"):
                pass
        assert tracer.active_span is root
    assert tracer.active_span is None
    assert [c.name for c in root.children] == ["route", "scan"]
    assert [c.name for c in scan.children] == ["scan-view"]
    assert root.depth == 0 and scan.depth == 1
    assert scan.children[0].depth == 2
    assert scan.children[0].parent_id == scan.span_id
    assert root.max_depth() == 2
    assert [s.name for s in root.walk()] == [
        "query", "route", "scan", "scan-view",
    ]


def test_child_duration_contained_in_parent():
    ledger = CostLedger()
    tracer = Tracer(ledger)
    with tracer.span("parent") as parent:
        ledger.charge(100.0)
        with tracer.span("child") as child:
            ledger.charge(250.0)
        ledger.charge(50.0)
    assert child.duration_ns == 250.0
    assert parent.duration_ns == 400.0


def test_duration_follows_the_tracer_lane_only():
    ledger = CostLedger()
    tracer = Tracer(ledger, lane=MAIN_LANE)
    with tracer.span("work") as span:
        ledger.charge(300.0, MAIN_LANE)
        ledger.charge(999.0, MAPPER_LANE)
        ledger.count("soft_faults", 4)
    assert span.duration_ns == 300.0
    assert span.lane_deltas == {MAIN_LANE: 300.0, MAPPER_LANE: 999.0}
    assert span.counter_deltas == {"soft_faults": 4}


def test_ring_buffer_truncates_and_counts_drops():
    ledger = CostLedger()
    tracer = Tracer(ledger, capacity=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert tracer.total_spans == 10
    assert len(tracer.finished_spans()) == 4
    assert [s.name for s in tracer.finished_spans()] == ["s6", "s7", "s8", "s9"]
    assert tracer.dropped_spans == 6
    assert tracer.dropped_roots == 6
    assert len(tracer.roots()) == 4


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(CostLedger(), capacity=0)


def test_attrs_via_open_and_set():
    tracer = Tracer(CostLedger())
    with tracer.span("q", lo=5, hi=9) as span:
        span.set(pages=12, rows=3)
    assert span.attrs == {"lo": 5, "hi": 9, "pages": 12, "rows": 3}
    record = span.to_dict()
    assert record["name"] == "q"
    assert record["attrs"]["pages"] == 12
    assert record["parent_id"] is None


def test_clear_keeps_totals():
    tracer = Tracer(CostLedger())
    with tracer.span("a"):
        pass
    tracer.clear()
    assert tracer.finished_spans() == []
    assert tracer.roots() == []
    assert tracer.total_spans == 1

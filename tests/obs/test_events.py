"""Event bus: subscribe, publish, wildcard, bounded history."""

from repro.obs.events import ALL_TOPICS, TOPIC_MMAP, Event, EventBus


def test_publish_reaches_topic_subscribers_in_order():
    bus = EventBus()
    seen = []
    bus.subscribe("a", lambda e: seen.append(("first", e.topic)))
    bus.subscribe("a", lambda e: seen.append(("second", e.topic)))
    bus.subscribe("b", lambda e: seen.append(("other", e.topic)))
    event = bus.publish("a", x=1)
    assert isinstance(event, Event)
    assert event["x"] == 1
    assert seen == [("first", "a"), ("second", "a")]


def test_wildcard_subscriber_sees_every_topic():
    bus = EventBus()
    topics = []
    bus.subscribe(ALL_TOPICS, lambda e: topics.append(e.topic))
    bus.publish(TOPIC_MMAP, op="mmap")
    bus.publish("layer.flush")
    assert topics == [TOPIC_MMAP, "layer.flush"]


def test_unsubscribe_stops_delivery():
    bus = EventBus()
    seen = []
    unsubscribe = bus.subscribe("t", seen.append)
    bus.publish("t")
    unsubscribe()
    bus.publish("t")
    unsubscribe()  # idempotent
    assert len(seen) == 1


def test_history_is_bounded_but_published_total_is_not():
    bus = EventBus(history=3)
    for i in range(7):
        bus.publish("t", i=i)
    assert bus.published == 7
    recent = bus.recent()
    assert [e["i"] for e in recent] == [4, 5, 6]
    assert [e["i"] for e in bus.recent("t")] == [4, 5, 6]
    assert bus.recent("other") == []

"""Exporter formats: Prometheus text, metrics JSON, span JSONL, trees."""

import json

from repro.obs.exporters import (
    render_metrics_json,
    render_prometheus,
    render_span_tree,
    render_trace_tree,
    trace_to_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer
from repro.vm.cost import CostLedger


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("mmap_calls_total", "mmap syscalls").inc(2, kind="fixed")
    registry.counter("queries_total", "queries")
    registry.gauge("partial_views").set(4)
    registry.histogram("ns", "durations", buckets=(10.0, 100.0)).observe(42)
    return registry


def test_prometheus_format():
    text = render_prometheus(populated_registry())
    lines = text.splitlines()
    assert "# HELP mmap_calls_total mmap syscalls" in lines
    assert "# TYPE mmap_calls_total counter" in lines
    assert 'mmap_calls_total{kind="fixed"} 2' in lines
    # untouched unlabelled counter still exposes a zero sample
    assert "queries_total 0" in lines
    assert "partial_views 4" in lines
    # histogram: cumulative buckets with +Inf, then _sum/_count
    assert 'ns_bucket{le="10"} 0' in lines
    assert 'ns_bucket{le="100"} 1' in lines
    assert 'ns_bucket{le="+Inf"} 1' in lines
    assert "ns_sum 42" in lines
    assert "ns_count 1" in lines
    assert text.endswith("\n")


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c_total").inc(kind='a"b\\c')
    text = render_prometheus(registry)
    assert 'c_total{kind="a\\"b\\\\c"} 1' in text


def test_metrics_json_roundtrips():
    doc = json.loads(render_metrics_json(populated_registry()))
    assert doc["mmap_calls_total"]["kind"] == "counter"
    assert doc["ns"]["samples"][0]["value"]["count"] == 1


def traced() -> Tracer:
    ledger = CostLedger()
    tracer = Tracer(ledger)
    with tracer.span("query", lo=1, hi=2):
        with tracer.span("scan"):
            ledger.charge(2_000_000.0)
            ledger.count("pages_scanned", 7)
    return tracer


def test_trace_jsonl_one_object_per_span():
    tracer = traced()
    lines = trace_to_jsonl(tracer).strip().splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    by_name = {r["name"]: r for r in records}
    assert by_name["scan"]["parent_id"] == by_name["query"]["span_id"]
    assert by_name["scan"]["counters"] == {"pages_scanned": 7}
    assert by_name["query"]["attrs"] == {"lo": 1, "hi": 2}


def test_trace_jsonl_empty_tracer():
    assert trace_to_jsonl(Tracer(CostLedger())) == ""


def test_span_tree_rendering():
    tracer = traced()
    root = tracer.roots()[0]
    tree = render_span_tree(root)
    assert tree.splitlines()[0].startswith("query [lo=1 hi=2] 2.0000 ms")
    assert "  scan 2.0000 ms (pages_scanned=7)" in tree


def test_trace_tree_header_and_limit():
    ledger = CostLedger()
    tracer = Tracer(ledger)
    for i in range(5):
        with tracer.span(f"root{i}"):
            pass
    out = render_trace_tree(tracer, max_roots=2)
    assert out.splitlines()[0] == "trace: 5 spans recorded, 5 roots buffered"
    assert "root3" in out and "root4" in out
    assert "root0" not in out


def test_prometheus_untouched_histogram_exposes_bucket_boundaries():
    registry = MetricsRegistry()
    registry.histogram("wall_ns", "wall time", buckets=(1000.0, 2000.0))
    lines = render_prometheus(registry).splitlines()
    assert 'wall_ns_bucket{le="1000"} 0' in lines
    assert 'wall_ns_bucket{le="2000"} 0' in lines
    assert 'wall_ns_bucket{le="+Inf"} 0' in lines
    assert "wall_ns_sum 0" in lines
    assert "wall_ns_count 0" in lines


def test_observer_exports_wall_and_drift_families():
    from repro.obs.observer import Observer
    from repro.vm.cost import CostLedger

    observer = Observer(CostLedger())
    text = render_prometheus(observer.metrics)
    assert "# TYPE cost_drift_ratio gauge" in text
    assert "# TYPE cost_drift_findings_total counter" in text
    assert "# TYPE span_wall_ns histogram" in text
    # wall bucket boundaries are visible before any observation
    assert 'span_wall_ns_bucket{le="1000"} 0' in text

"""Portable trace exports: Chrome trace_event JSON and folded stacks."""

import json

from repro.obs.exporters import trace_to_chrome, trace_to_folded
from repro.obs.span import Tracer
from repro.vm.cost import CostLedger


def traced() -> Tracer:
    ledger = CostLedger()
    tracer = Tracer(ledger)
    with tracer.span("query", lo=1, hi=2):
        with tracer.span("scan"):
            ledger.charge(2_000_000.0)
            ledger.count("pages_scanned", 7)
        with tracer.span("candidate"):
            ledger.charge(500_000.0)
    return tracer


# The full Chrome trace document of traced(): the golden file.  Spans
# appear in finish order (scan, candidate, then the enclosing query);
# the timeline is simulated nanoseconds, so the document is
# deterministic down to the byte.
GOLDEN_CHROME = {
    "displayTimeUnit": "ms",
    "traceEvents": [
        {
            "args": {"name": "repro simulated timeline"},
            "name": "process_name",
            "ph": "M",
            "pid": 1,
        },
        {
            "args": {"counter.pages_scanned": 7, "sim_ns": 2000000.0,
                     "span_id": 2},
            "cat": "main",
            "dur": 2000.0,
            "name": "scan",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": 0.0,
        },
        {
            "args": {"sim_ns": 500000.0, "span_id": 3},
            "cat": "main",
            "dur": 500.0,
            "name": "candidate",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": 2000.0,
        },
        {
            "args": {"attr.hi": 2, "attr.lo": 1,
                     "counter.pages_scanned": 7, "sim_ns": 2500000.0,
                     "span_id": 1},
            "cat": "main",
            "dur": 2500.0,
            "name": "query",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": 0.0,
        },
    ],
}


def test_chrome_trace_matches_golden():
    doc = json.loads(trace_to_chrome(traced()))
    assert doc == GOLDEN_CHROME


def test_chrome_trace_is_byte_deterministic():
    assert trace_to_chrome(traced()) == trace_to_chrome(traced())
    # key-sorted, pretty-printed, newline-terminated
    text = trace_to_chrome(traced())
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"


def test_chrome_trace_empty_tracer():
    doc = json.loads(trace_to_chrome(Tracer(CostLedger())))
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]


def test_chrome_trace_wall_args_only_when_measured():
    doc = json.loads(trace_to_chrome(traced()))
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert all("wall_ns" not in e["args"] for e in spans)


def test_folded_stacks_golden():
    # Self-time weighting: query charged 2.5ms total, 2.5ms in children.
    assert trace_to_folded(traced()) == (
        "query 0\n"
        "query;candidate 500000\n"
        "query;scan 2000000\n"
    )


def test_folded_stacks_wall_weight_rejects_unknown():
    import pytest

    with pytest.raises(ValueError):
        trace_to_folded(traced(), weight="cycles")


def test_folded_stacks_wall_weight_zero_without_wall_ledger():
    # No wall ledger attached: every wall weight is zero.
    lines = trace_to_folded(traced(), weight="wall").splitlines()
    assert all(line.endswith(" 0") for line in lines)

"""Metrics registry: counters, gauges, histogram bucketing."""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    label_key,
)


def test_counter_accumulates_per_label_set():
    counter = Counter("mmap_calls_total")
    counter.inc(kind="fixed")
    counter.inc(2, kind="fixed")
    counter.inc(kind="anon")
    assert counter.value(kind="fixed") == 3
    assert counter.value(kind="anon") == 1
    assert counter.value(kind="file") == 0


def test_counter_rejects_negative_increment():
    counter = Counter("c_total")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("partial_views")
    gauge.set(5)
    gauge.add(-2)
    assert gauge.value() == 3


def test_label_key_is_order_insensitive():
    assert label_key({"b": 2, "a": "x"}) == label_key({"a": "x", "b": 2})


def test_histogram_buckets_values_inclusively():
    hist = Histogram("pages", buckets=(1.0, 4.0, 16.0))
    for value in (0, 1, 2, 4, 5, 100):
        hist.observe(value)
    sample = hist.sample()
    # (-inf,1], (1,4], (4,16], (16,+inf)
    assert sample.bucket_counts == [2, 2, 1, 1]
    assert sample.count == 6
    assert sample.total == 112
    assert hist.cumulative_counts() == [2, 4, 5, 6]


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=(4.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))


def test_registry_get_or_create_and_type_conflict():
    registry = MetricsRegistry()
    first = registry.counter("queries_total")
    assert registry.counter("queries_total") is first
    with pytest.raises(ValueError):
        registry.gauge("queries_total")
    assert registry.get("queries_total") is first
    assert registry.get("missing") is None


def test_invalid_metric_name_rejected():
    with pytest.raises(ValueError):
        Counter("bad name")
    with pytest.raises(ValueError):
        Counter("")


def test_snapshot_is_json_shaped():
    registry = MetricsRegistry()
    registry.counter("ops_total", "help text").inc(3, kind="a")
    registry.histogram("ns", buckets=(10.0,)).observe(7)
    snap = registry.snapshot()
    assert snap["ops_total"]["kind"] == "counter"
    assert snap["ops_total"]["help"] == "help text"
    assert snap["ops_total"]["samples"] == [
        {"labels": {"kind": "a"}, "value": 3}
    ]
    hist_sample = snap["ns"]["samples"][0]["value"]
    assert hist_sample["buckets"] == {"10.0": 1, "+Inf": 0}
    assert hist_sample["sum"] == 7
    assert hist_sample["count"] == 1


def test_wall_clock_bucket_presets_cover_their_lanes():
    from repro.obs.metrics import WALL_MS_BUCKETS, WALL_US_BUCKETS

    # µs lane: 1 µs .. 1 ms in a 1-2-5 series, +1 s overflow bound
    assert WALL_US_BUCKETS[0] == 1_000.0
    assert WALL_US_BUCKETS[-2] == 500_000.0
    assert WALL_US_BUCKETS[-1] == 1e6
    # ms lane: 1 ms .. 1 s, +1000 s overflow bound
    assert WALL_MS_BUCKETS[0] == 1e6
    assert WALL_MS_BUCKETS[-1] == 1e9
    for buckets in (WALL_US_BUCKETS, WALL_MS_BUCKETS):
        assert list(buckets) == sorted(buckets)
        assert len(set(buckets)) == len(buckets)


def test_wall_bucket_histogram_observes_into_lanes():
    from repro.obs.metrics import WALL_US_BUCKETS

    registry = MetricsRegistry()
    hist = registry.histogram(
        "span_wall_ns", "wall time", buckets=WALL_US_BUCKETS
    )
    hist.observe(1_500.0)   # 1.5 µs -> le=2000 bucket
    hist.observe(2e9)       # 2 s -> +Inf only
    sample = registry.snapshot()["span_wall_ns"]["samples"][0]["value"]
    assert sample["buckets"]["2000.0"] == 1
    assert sample["buckets"]["+Inf"] == 1

"""Session layer: options, disciplines, the response envelope."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.server import (
    DatabaseManager,
    Response,
    SessionOptions,
    render_response,
    result_digest,
)
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 8
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _values() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64)


@pytest.fixture
def manager():
    with DatabaseManager() as mgr:
        db = mgr.create_database(
            config=AdaptiveConfig(background_mapping=False)
        )
        db.create_table("t", {"x": _values()})
        yield mgr


class TestSessionOptions:
    def test_defaults(self):
        options = SessionOptions()
        assert options.read_only is False
        assert options.autocommit is True
        assert options.observe is True
        assert options.planner == "adaptive"

    def test_mapping_round_trip(self):
        options = SessionOptions(read_only=True, planner="fullscan")
        assert SessionOptions.from_mapping(options.to_mapping()) == options

    def test_from_mapping_accepts_none(self):
        assert SessionOptions.from_mapping(None) == SessionOptions()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown session option"):
            SessionOptions.from_mapping({"isolation": "serializable"})

    def test_bad_planner_rejected(self):
        with pytest.raises(ValueError, match="planner"):
            SessionOptions(planner="cost-based")

    def test_non_bool_flag_rejected(self):
        with pytest.raises(ValueError):
            SessionOptions(read_only="yes")


class TestStructuredOperations:
    def test_query_matches_numpy_oracle(self, manager):
        with manager.open_session() as session:
            lo, hi = 100, 4_000
            response = session.query("t", "x", lo, hi)
            assert response.ok
            expected_rows = np.arange(lo, hi + 1, dtype=np.int64)
            assert response.data["rows"] == expected_rows.size
            assert response.data["value_sum"] == int(expected_rows.sum())
            assert response.data["checksum"] == result_digest(
                expected_rows, expected_rows
            )
            assert response.data["snapshot"] is False
            assert response.data["degraded"] is False
            assert response.sim_ns > 0

    def test_include_values_ships_rows(self, manager):
        with manager.open_session() as session:
            response = session.query("t", "x", 5, 9, include_values=True)
            assert response.data["rowids"] == [5, 6, 7, 8, 9]
            assert response.data["values"] == [5, 6, 7, 8, 9]

    def test_autocommit_update_flushes_immediately(self, manager):
        db = manager.database()
        with manager.open_session() as session:
            response = session.update("t", "x", 3, 999_999)
            assert response.ok
            assert response.data == {"old_value": 3, "flushed": True}
            assert len(db.table("t").pending_updates("x")) == 0
            hit = session.query("t", "x", 999_999, 999_999)
            assert hit.data["rows"] == 1

    def test_batched_update_waits_for_commit(self, manager):
        db = manager.database()
        options = SessionOptions(autocommit=False)
        with manager.open_session(options=options) as session:
            response = session.update("t", "x", 3, 999_999)
            assert response.data["flushed"] is False
            assert len(db.table("t").pending_updates("x")) == 1
            commit = session.commit()
            assert commit.ok
            assert commit.data["columns_flushed"] == 1
            assert len(db.table("t").pending_updates("x")) == 0

    def test_flush_skips_clean_columns(self, manager):
        with manager.open_session() as session:
            response = session.flush("t")
            assert response.ok
            assert response.data["columns_flushed"] == 0

    def test_delete_tombstones_rows(self, manager):
        with manager.open_session() as session:
            response = session.delete("t", "x", 10, 19)
            assert response.data["deleted"] == 10
            gone = session.query("t", "x", 10, 19)
            assert gone.data["rows"] == 0

    def test_sequence_and_session_id_stamped(self, manager):
        with manager.open_session() as session:
            first = session.query("t", "x", 0, 1)
            second = session.status()
            assert first.session_id == session.session_id
            assert (first.sequence, second.sequence) == (1, 2)

    def test_status_reports_settings(self, manager):
        with manager.open_session() as session:
            session.query("t", "x", 0, 100)
            status = session.status()
            assert status.data["db"] == "default"
            assert status.data["health"] == "healthy"
            assert status.data["degraded"] is False
            assert status.data["admission"]["active"] == 1
            assert status.data["ledger_ns"] > 0
            assert status.data["pinned_snapshots"] == []
            # status itself is envelope work: uncharged.
            assert status.sim_ns == 0


class TestSql:
    def test_sql_round_trip(self, manager):
        with manager.open_session() as session:
            session.execute("CREATE TABLE s (k, v)").raise_for_error()
            rows = ", ".join(f"({i}, {i * 10})" for i in range(50))
            session.execute(f"INSERT INTO s VALUES {rows}").raise_for_error()
            result = session.execute(
                "SELECT COUNT(*) FROM s WHERE k BETWEEN 10 AND 19"
            )
            assert result.ok
            assert result.scalar() == 10

    def test_autocommit_sql_update_flushes(self, manager):
        with manager.open_session() as session:
            session.execute("CREATE TABLE s (k, v)")
            rows = ", ".join(f"({i}, {i})" for i in range(50))
            session.execute(f"INSERT INTO s VALUES {rows}")
            session.execute(
                "UPDATE s SET v = 777 WHERE k = 5"
            ).raise_for_error()
            assert len(
                manager.database().table("s").pending_updates("v")
            ) == 0

    def test_sql_error_renders_like_the_repl(self, manager):
        with manager.open_session() as session:
            response = session.execute("SELECT FROM")
            assert not response.ok
            assert response.error
            lines = []
            render_response(response, emit=lines.append)
            assert lines == [f"error: {response.error}"]


class TestReadOnly:
    @pytest.fixture
    def session(self, manager):
        options = SessionOptions(read_only=True)
        with manager.open_session(options=options) as sess:
            yield sess

    def test_reads_allowed(self, session):
        assert session.query("t", "x", 0, 10).ok
        assert session.status().ok

    def test_structured_writes_rejected(self, session):
        for response in (
            session.update("t", "x", 0, 1),
            session.delete("t", "x", 0, 1),
            session.flush("t"),
            session.commit(),
        ):
            assert not response.ok
            assert response.error == "session is read-only"
            assert response.error_details == "ReadOnlySession"

    def test_sql_writes_rejected_before_execution(self, session):
        response = session.execute("CREATE TABLE s (k)")
        assert not response.ok
        assert response.error_details == "ReadOnlySession"
        assert session.execute("SELECT * FROM t WHERE x = 1").ok


class TestErrors:
    def test_unknown_table_is_an_error_response(self, manager):
        with manager.open_session() as session:
            response = session.query("ghost", "x", 0, 1)
            assert not response.ok
            assert "ghost" in response.error
            with pytest.raises(RuntimeError):
                response.raise_for_error()

    def test_closed_session_refuses_requests(self, manager):
        session = manager.open_session()
        session.close()
        response = session.query("t", "x", 0, 1)
        assert not response.ok
        assert response.error_details == "SessionClosed"

    def test_close_is_idempotent_and_releases_slot(self, manager):
        session = manager.open_session()
        session.close()
        session.close()
        assert manager.admission().active_sessions == 0

    def test_scalar_requires_1x1(self):
        response = Response(columns=["a", "b"], rows=[(1, 2)])
        with pytest.raises(ValueError):
            response.scalar()


class TestRenderResponse:
    def test_tabular_render(self):
        response = Response(columns=["k"], rows=[(1,), (2,)])
        lines = []
        render_response(response, emit=lines.append)
        assert lines[-1] == "(2 rows)"
        assert "k" in lines[0]

    def test_message_render(self):
        lines = []
        render_response(Response(message="1 row updated"), emit=lines.append)
        assert lines == ["1 row updated"]

    def test_silent_on_empty_success(self):
        lines = []
        render_response(Response(), emit=lines.append)
        assert lines == []

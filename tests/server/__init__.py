"""Serving-layer tests: sessions, admission, isolation, wire, parity."""

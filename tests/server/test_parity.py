"""The parity contract: serving is free when nobody else is talking.

A quiescent single-session server run must be *bit-identical in
simulated cost* to driving :class:`AdaptiveDatabase` directly — the
session envelope (admission checks, sequence counters, health probes,
response digests) charges nothing.  Enforced on a fixed workload, over
a real TCP socket, and fuzz-enforced over random op sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.server import DatabaseManager, QueryServer, ServerClient, result_digest
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 4
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _values() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64)


def _config() -> AdaptiveConfig:
    return AdaptiveConfig(background_mapping=False)


def _apply_direct(db: AdaptiveDatabase, op: tuple) -> None:
    """Replay one op the way the facade is driven without a server."""
    kind = op[0]
    if kind == "query":
        lo, hi = sorted(op[1:])
        db.query("t", "x", lo, hi)
    elif kind == "update":
        _, row, value = op
        try:
            db.update("t", "x", row, value)
        except KeyError:
            return  # deleted row: the session surfaces the same error
        db.flush_updates("t", "x")  # what an autocommit session does
    elif kind == "delete":
        lo, hi = sorted(op[1:])
        db.delete("t", "x", lo, hi)


def _apply_session(session, op: tuple) -> None:
    kind = op[0]
    if kind == "query":
        lo, hi = sorted(op[1:])
        session.query("t", "x", lo, hi).raise_for_error()
    elif kind == "update":
        _, row, value = op
        response = session.update("t", "x", row, value)
        if not response.ok and "deleted row" not in response.error:
            response.raise_for_error()
    elif kind == "delete":
        lo, hi = sorted(op[1:])
        session.delete("t", "x", lo, hi).raise_for_error()


def _direct_ledger(ops) -> tuple:
    with AdaptiveDatabase(config=_config()) as db:
        db.create_table("t", {"x": _values()})
        for op in ops:
            _apply_direct(db, op)
        lanes, counters = db.cost.ledger.snapshot()
    return dict(lanes), dict(counters)


def _served_ledger(ops, via_tcp: bool = False) -> tuple:
    with DatabaseManager() as manager:
        db = manager.create_database(config=_config())
        db.create_table("t", {"x": _values()})
        if via_tcp:
            with QueryServer(manager=manager) as server:
                host, port = server.address
                with ServerClient(host, port) as client:
                    for op in ops:
                        _apply_session(client, op)
                    client.status().raise_for_error()  # envelope: free
        else:
            with manager.open_session() as session:
                for op in ops:
                    _apply_session(session, op)
                session.status().raise_for_error()
        lanes, counters = db.cost.ledger.snapshot()
    return dict(lanes), dict(counters)


FIXED_WORKLOAD = [
    ("query", 10, 400),
    ("query", VALUES_PER_PAGE, 3 * VALUES_PER_PAGE),
    ("update", 7, 999_999),
    ("query", 0, NUM_ROWS - 1),
    ("delete", 50, 80),
    ("query", 10, 400),
    ("update", 200, 1_234),
    ("query", 100, 2_000),
]


class TestFixedWorkloadParity:
    def test_in_process_session_is_cost_identical(self):
        assert _served_ledger(FIXED_WORKLOAD) == _direct_ledger(
            FIXED_WORKLOAD
        )

    def test_tcp_session_is_cost_identical(self):
        assert _served_ledger(FIXED_WORKLOAD, via_tcp=True) == _direct_ledger(
            FIXED_WORKLOAD
        )

    def test_results_match_over_the_wire(self):
        """Same bytes, not just the same bill: the wire checksum equals
        the digest of the direct result."""
        with AdaptiveDatabase(config=_config()) as db:
            db.create_table("t", {"x": _values()})
            for op in FIXED_WORKLOAD:
                _apply_direct(db, op)
            direct = db.query("t", "x", 0, 2_000_000)
            digest = result_digest(direct.rowids, direct.values)

        with DatabaseManager() as manager:
            served = manager.create_database(config=_config())
            served.create_table("t", {"x": _values()})
            with QueryServer(manager=manager) as server:
                host, port = server.address
                with ServerClient(host, port) as client:
                    for op in FIXED_WORKLOAD:
                        _apply_session(client, op)
                    response = client.query("t", "x", 0, 2_000_000)
        assert response.data["checksum"] == digest


_op = st.one_of(
    st.tuples(
        st.just("query"),
        st.integers(0, NUM_ROWS - 1),
        st.integers(0, NUM_ROWS - 1),
    ),
    st.tuples(
        st.just("update"),
        st.integers(0, NUM_ROWS - 1),
        st.integers(0, 2 * NUM_ROWS),
    ),
    st.tuples(
        st.just("delete"),
        st.integers(0, NUM_ROWS - 1),
        st.integers(0, NUM_ROWS - 1),
    ),
)


class TestFuzzedParity:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(_op, max_size=10))
    def test_random_workloads_are_cost_identical(self, ops):
        assert _served_ledger(ops) == _direct_ledger(ops)

    @settings(max_examples=10, deadline=None)
    @given(ops=st.lists(_op, min_size=1, max_size=6))
    def test_status_and_health_probes_charge_nothing(self, ops):
        with DatabaseManager() as manager:
            db = manager.create_database(config=_config())
            db.create_table("t", {"x": _values()})
            with manager.open_session() as session:
                for op in ops:
                    _apply_session(session, op)
                before = db.cost.ledger.snapshot()
                for _ in range(3):
                    session.status().raise_for_error()
                    db.health()
                assert db.cost.ledger.snapshot() == before

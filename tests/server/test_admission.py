"""Admission control: the health state machine gates the serving layer."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.resilience import HealthState, ResilienceConfig
from repro.server import (
    AdmissionDecision,
    AdmissionPolicy,
    DatabaseManager,
    SessionOptions,
    SessionShed,
)
from repro.substrate import make_substrate
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 8
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _values() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64)


def _assert_correct(response, lo, hi):
    """The response answers [lo, hi] exactly, whatever tier ran it."""
    expected = np.arange(lo, min(hi, NUM_ROWS - 1) + 1, dtype=np.int64)
    assert response.ok
    assert response.data["rows"] == expected.size
    assert response.data["value_sum"] == int(expected.sum())


class TestPolicyValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_sessions"):
            AdmissionPolicy(max_sessions=0)

    def test_zero_journal_rejected(self):
        with pytest.raises(ValueError, match="journal_capacity"):
            AdmissionPolicy(journal_capacity=0)


class TestCapacityShedding:
    @pytest.fixture
    def manager(self):
        with DatabaseManager() as mgr:
            db = mgr.create_database(
                policy=AdmissionPolicy(max_sessions=2),
                config=AdaptiveConfig(background_mapping=False),
            )
            db.create_table("t", {"x": _values()})
            yield mgr

    def test_capacity_cap_sheds_then_recovers(self, manager):
        first = manager.open_session()
        second = manager.open_session()
        with pytest.raises(SessionShed) as excinfo:
            manager.open_session()
        assert excinfo.value.reason == "capacity"
        assert excinfo.value.health is HealthState.HEALTHY
        assert "capacity" in str(excinfo.value)

        first.close()
        third = manager.open_session()
        assert third.admit_reason == "healthy"
        third.close()
        second.close()

    def test_counters_and_journal_tell_the_story(self, manager):
        admission = manager.admission()
        sessions = [manager.open_session(), manager.open_session()]
        with pytest.raises(SessionShed):
            manager.open_session()
        status = admission.status()
        assert status.active == 2
        assert status.admitted_total == 2
        assert status.shed_total == 1
        assert status.max_sessions == 2

        journal = admission.journal()
        assert [r.decision for r in journal] == [
            AdmissionDecision.ADMIT,
            AdmissionDecision.ADMIT,
            AdmissionDecision.SHED,
        ]
        assert journal[-1].reason == "capacity"
        assert journal[-1].kind == "session"
        assert [r.sequence for r in journal] == [1, 2, 3]
        for session in sessions:
            session.close()
        assert admission.status().active == 0

    def test_journal_ring_is_bounded(self):
        with DatabaseManager() as mgr:
            db = mgr.create_database(
                policy=AdmissionPolicy(journal_capacity=4)
            )
            db.create_table("t", {"x": _values()})
            for _ in range(10):
                mgr.open_session().close()
            journal = mgr.admission().journal()
            assert len(journal) == 4
            assert journal[-1].sequence == 10


class TestGovernorDegrade:
    """A tight mapping budget downgrades sessions to the full-scan tier."""

    @pytest.fixture
    def manager(self):
        with DatabaseManager() as mgr:
            db = mgr.create_database(
                config=AdaptiveConfig(background_mapping=False),
                resilience=ResilienceConfig(mapping_budget=1, seed=0),
            )
            db.create_table("t", {"x": _values()})
            yield mgr

    def test_budget_pressure_degrades_queries_not_answers(self, manager):
        db = manager.database()
        with manager.open_session() as session:
            lo, hi = 2 * VALUES_PER_PAGE, 3 * VALUES_PER_PAGE - 1
            first = session.query("t", "x", lo, hi)
            _assert_correct(first, lo, hi)
            assert first.data["degraded"] is False
            # The one budgeted view now exists: the governor is saturated.
            assert db.health() is HealthState.DEGRADED

            second = session.query("t", "x", lo, hi)
            _assert_correct(second, lo, hi)
            assert second.data["degraded"] is True

    def test_new_sessions_latch_the_degraded_tier(self, manager):
        db = manager.database()
        with manager.open_session() as warm:
            warm.query("t", "x", 0, VALUES_PER_PAGE - 1)
        assert db.health() is HealthState.DEGRADED

        with manager.open_session() as session:
            assert session.degraded is True
            assert session.admit_reason == "degraded"
            response = session.query("t", "x", 100, 900)
            _assert_correct(response, 100, 900)
            assert response.data["degraded"] is True
        assert manager.admission().status().downgraded_total >= 1

    def test_query_downgrades_are_journaled(self, manager):
        with manager.open_session() as session:
            session.query("t", "x", 0, VALUES_PER_PAGE - 1)
            session.query("t", "x", 0, 50)
        records = [
            r for r in manager.admission().journal() if r.kind == "query"
        ]
        assert records
        assert all(
            r.decision is AdmissionDecision.DEGRADE for r in records
        )
        assert records[-1].health is HealthState.DEGRADED


class TestReadonlyShedding:
    """A READONLY-latched database sheds new sessions outright."""

    @pytest.fixture
    def manager(self):
        substrate = FaultySubstrate(make_substrate("simulated"))
        db = AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False),
            backend=substrate,
            resilience=ResilienceConfig(seed=0, readonly_fault_threshold=2),
        )
        db.create_table("t", {"x": _values()})
        db.layer("t", "x")
        with DatabaseManager() as mgr:
            mgr.add_database("armed", db)
            yield mgr, substrate

    def test_readonly_sheds_new_sessions(self, manager):
        mgr, substrate = manager
        db = mgr.database("armed")
        survivor = mgr.open_session("armed")

        substrate.schedule = FaultSchedule(
            [FaultRule(ops="map_fixed", probability=1.0, transient=False)],
            seed=0,
        )
        # Two failed candidate mappings latch the layer READONLY.
        db.query("t", "x", 0, VALUES_PER_PAGE - 1)
        db.query("t", "x", 0, 4 * VALUES_PER_PAGE - 1)
        assert db.health() is HealthState.READONLY

        with pytest.raises(SessionShed) as excinfo:
            mgr.open_session("armed")
        assert excinfo.value.reason == "readonly"
        assert excinfo.value.health is HealthState.READONLY
        assert mgr.admission("armed").journal()[-1].reason == "readonly"

        # The pre-latch session keeps answering, downgraded per query.
        response = survivor.query("t", "x", 10, 500)
        _assert_correct(response, 10, 500)
        assert response.data["degraded"] is True
        survivor.close()


class TestPlannerPin:
    def test_fullscan_option_latches_without_pressure(self):
        with DatabaseManager() as mgr:
            db = mgr.create_database(
                config=AdaptiveConfig(background_mapping=False)
            )
            db.create_table("t", {"x": _values()})
            options = SessionOptions(planner="fullscan")
            with mgr.open_session(options=options) as session:
                assert session.degraded is True
                assert session.admit_reason == "healthy"
                response = session.query("t", "x", 0, 99)
                _assert_correct(response, 0, 99)
                assert response.data["degraded"] is True
            # The pin is the session's own choice, not governor pressure.
            assert db.health() is HealthState.HEALTHY

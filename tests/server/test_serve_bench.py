"""The serving benchmark: sweep shape, op accounting, oracle checks."""

import pytest

from repro.bench.serve import (
    DEFAULT_SESSION_COUNTS,
    WRITE_EVERY,
    _session_counts,
    bench_serving,
)
from repro.server.protocol import PROTOCOL_VERSION


class TestSessionSweep:
    def test_default_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_SESSIONS", raising=False)
        assert _session_counts(None) == DEFAULT_SESSION_COUNTS

    def test_env_sets_the_maximum(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSIONS", "2")
        assert _session_counts(None) == (1, 2)

    def test_explicit_maximum_wins(self):
        assert _session_counts(8) == (1, 2, 4, 8)
        assert _session_counts(6) == (1, 2, 4, 6)
        assert _session_counts(1) == DEFAULT_SESSION_COUNTS


class TestBenchServing:
    @pytest.fixture(scope="class")
    def payload(self):
        return bench_serving(
            num_pages=32, max_sessions=2, ops_per_session=8, seed=11
        )

    def test_payload_shape(self, payload):
        assert payload["pages"] == 32
        assert payload["ops_per_session"] == 8
        assert payload["write_every"] == WRITE_EVERY
        assert payload["protocol"] == PROTOCOL_VERSION
        assert payload["seed"] == 11
        assert [e["sessions"] for e in payload["entries"]] == [1, 2]

    def test_every_level_is_oracle_checked(self, payload):
        for entry in payload["entries"]:
            assert entry["oracle_ok"] is True
            assert entry["oracle_rows"] > 0

    def test_op_accounting(self, payload):
        for entry in payload["entries"]:
            sessions = entry["sessions"]
            # 8 ops each, every 4th a write: 2 writes, 6 reads per session.
            assert entry["writes"] == 2 * sessions
            assert entry["reads"] == 6 * sessions
            assert entry["ops"] == entry["reads"] + entry["writes"] + sessions
            assert entry["seconds"] > 0
            assert entry["qps"] > 0
            assert entry["read_qps"] > 0

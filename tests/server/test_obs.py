"""Serving observability: truthful metrics, events, spans — all free.

Style of ``tests/shard/test_obs.py``: run the identical served workload
with observation off and on, demand the simulated cost is bit-identical,
then check the observed run told the truth.
"""

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.obs.events import TOPIC_SERVER_ADMIT, TOPIC_SERVER_SHED
from repro.server import (
    AdmissionPolicy,
    DatabaseManager,
    SessionOptions,
    SessionShed,
)
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 4
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _values() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64)


def _serve_workload(observe: bool):
    """The canonical served workload: two admitted sessions (three
    queries, one update), one capacity-shed attempt."""
    manager = DatabaseManager()
    db = manager.create_database(
        observe=observe,
        config=AdaptiveConfig(background_mapping=False),
        policy=AdmissionPolicy(max_sessions=2),
    )
    db.create_table("t", {"x": _values()})

    first = manager.open_session()
    second = manager.open_session()
    try:
        manager.open_session()
    except SessionShed:
        pass
    first.query("t", "x", 10, 400).raise_for_error()
    first.query("t", "x", 0, NUM_ROWS - 1).raise_for_error()
    first.update("t", "x", 3, 999_999).raise_for_error()
    second.query("t", "x", 5, 60).raise_for_error()
    second.close()
    first.close()
    return manager, db


class TestObservationIsFree:
    def test_served_cost_identical_with_and_without_observer(self):
        blind_manager, blind = _serve_workload(observe=False)
        seen_manager, seen = _serve_workload(observe=True)
        try:
            assert blind.observer is None
            assert seen.observer is not None
            assert (
                blind.cost.ledger.snapshot() == seen.cost.ledger.snapshot()
            )
        finally:
            blind_manager.close()
            seen_manager.close()

    def test_observe_false_option_silences_one_session(self):
        manager, db = _serve_workload(observe=True)
        try:
            requests = db.observer.metrics.get("server_requests_total")
            before = sum(v for _, v in requests.samples())
            options = SessionOptions(observe=False)
            with manager.open_session(options=options) as quiet:
                quiet.query("t", "x", 0, 10).raise_for_error()
            assert sum(v for _, v in requests.samples()) == before
        finally:
            manager.close()


class TestServingMetrics:
    def test_session_gauge_and_admission_counters(self):
        manager, db = _serve_workload(observe=True)
        try:
            m = db.observer.metrics
            assert m.get("sessions_active").value() == 0  # all closed
            opened = m.get("sessions_opened_total")
            assert opened.value(decision="admit") == 2
            rejected = m.get("sessions_rejected_total")
            assert rejected.value(reason="capacity") == 1
        finally:
            manager.close()

    def test_request_counters_by_operation(self):
        manager, db = _serve_workload(observe=True)
        try:
            requests = db.observer.metrics.get("server_requests_total")
            assert requests.value(op="query") == 3
            assert requests.value(op="update") == 1
            histogram = db.observer.metrics.get("server_request_sim_ns")
            labels = {dict(key).get("op") for key, _ in histogram.samples()}
            assert {"query", "update"} <= labels
        finally:
            manager.close()


class TestServingEvents:
    def test_admit_and_shed_events_published(self):
        manager, db = _serve_workload(observe=True)
        try:
            admits = db.observer.events.recent(TOPIC_SERVER_ADMIT)
            assert len(admits) == 2
            assert [e["decision"] for e in admits] == ["admit", "admit"]
            assert [e["active"] for e in admits] == [1, 2]
            sheds = db.observer.events.recent(TOPIC_SERVER_SHED)
            assert len(sheds) == 1
            assert sheds[0]["reason"] == "capacity"
        finally:
            manager.close()


class TestServingSpans:
    def test_requests_carry_per_session_span_labels(self):
        manager, db = _serve_workload(observe=True)
        try:
            spans = [
                span
                for span in db.observer.tracer.finished_spans()
                if span.name == "server.request"
            ]
            assert len(spans) == 4  # three queries + one update
            ops = [span.attrs["op"] for span in spans]
            assert ops.count("query") == 3
            assert ops.count("update") == 1
            sessions = {span.attrs["session"] for span in spans}
            assert len(sessions) == 2  # two distinct sessions labelled
        finally:
            manager.close()

"""The wire layer: handshake, dispatch, shedding, and the client."""

import json
import socket

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.server import (
    AdmissionPolicy,
    DatabaseManager,
    QueryServer,
    ServerClient,
    SessionOptions,
    SessionShed,
)
from repro.server.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
)
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 4
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _values() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64)


@pytest.fixture
def server():
    with DatabaseManager() as manager:
        db = manager.create_database(
            config=AdaptiveConfig(background_mapping=False)
        )
        db.create_table("t", {"x": _values()})
        manager.create_database(
            "capped", policy=AdmissionPolicy(max_sessions=1)
        ).create_table("t", {"x": _values()})
        with QueryServer(manager=manager) as srv:
            yield srv


class _RawConnection:
    """A bare socket speaking the line protocol, for handshake tests."""

    def __init__(self, address):
        self._sock = socket.create_connection(address, timeout=10)
        self._file = self._sock.makefile("rwb")

    def send(self, message: dict) -> dict:
        self._file.write(json.dumps(message).encode() + b"\n")
        self._file.flush()
        return json.loads(self._file.readline())

    def send_raw(self, payload: bytes) -> dict:
        self._file.write(payload)
        self._file.flush()
        return json.loads(self._file.readline())

    def close(self) -> None:
        self._file.close()
        self._sock.close()


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "query", "lo": 1, "hi": 2}
        assert decode(encode(message)) == message

    def test_decode_rejects_non_mapping(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"{not json\n")

    def test_oversized_message_rejected(self):
        with pytest.raises(ProtocolError):
            encode({"blob": "x" * MAX_LINE_BYTES})


class TestHandshake:
    def test_greeting_carries_session_facts(self, server):
        conn = _RawConnection(server.address)
        try:
            greeting = conn.send(
                {"op": "open", "db": "default", "options": {"autocommit": False}}
            )
            assert greeting["ok"] is True
            assert greeting["data"]["protocol"] == PROTOCOL_VERSION
            assert greeting["data"]["db"] == "default"
            assert greeting["data"]["degraded"] is False
            assert greeting["data"]["options"]["autocommit"] is False
            assert greeting["session_id"] > 0
        finally:
            conn.close()

    def test_first_request_must_be_open(self, server):
        conn = _RawConnection(server.address)
        try:
            reply = conn.send({"op": "query", "table": "t"})
            assert reply["ok"] is False
            assert reply["error"] == "first request must be 'open'"
        finally:
            conn.close()

    def test_garbage_first_line_is_a_protocol_error(self, server):
        conn = _RawConnection(server.address)
        try:
            reply = conn.send_raw(b"{not json\n")
            assert reply["ok"] is False
            assert reply["error_details"] == "ProtocolError"
        finally:
            conn.close()

    def test_unknown_database_refused(self, server):
        conn = _RawConnection(server.address)
        try:
            reply = conn.send({"op": "open", "db": "ghost"})
            assert reply["ok"] is False
            assert "ghost" in reply["error"]
        finally:
            conn.close()

    def test_unknown_option_refused(self, server):
        conn = _RawConnection(server.address)
        try:
            reply = conn.send(
                {"op": "open", "options": {"isolation": "serializable"}}
            )
            assert reply["ok"] is False
            assert "unknown session option" in reply["error"]
        finally:
            conn.close()


class TestDispatch:
    @pytest.fixture
    def conn(self, server):
        conn = _RawConnection(server.address)
        assert conn.send({"op": "open"})["ok"]
        yield conn
        conn.close()

    def test_unknown_op_refused(self, conn):
        reply = conn.send({"op": "frobnicate"})
        assert reply["ok"] is False
        assert "unknown operation 'frobnicate'" in reply["error"]

    def test_missing_arguments_refused(self, conn):
        reply = conn.send({"op": "query", "table": "t"})
        assert reply["ok"] is False
        assert "bad request arguments" in reply["error"]

    def test_close_op_ends_the_session(self, conn, server):
        reply = conn.send({"op": "close"})
        assert reply["ok"] is True
        assert reply["message"] == "session closed"
        assert server.manager.admission().active_sessions == 0


class TestShedGreeting:
    def test_capacity_shed_over_the_wire(self, server):
        host, port = server.address
        holder = ServerClient(host, port, db="capped")
        try:
            conn = _RawConnection(server.address)
            try:
                reply = conn.send({"op": "open", "db": "capped"})
                assert reply["ok"] is False
                assert reply["data"] == {
                    "shed": True,
                    "reason": "capacity",
                    "health": "healthy",
                }
            finally:
                conn.close()
            with pytest.raises(SessionShed) as excinfo:
                ServerClient(host, port, db="capped")
            assert excinfo.value.reason == "capacity"
        finally:
            holder.close()
        # The slot frees on close: the next connection is admitted.
        ServerClient(host, port, db="capped").close()


class TestServerClient:
    def test_structured_round_trip(self, server):
        host, port = server.address
        with ServerClient(host, port) as client:
            assert client.degraded is False
            assert client.admit_reason == "healthy"
            response = client.query("t", "x", 10, 50, include_values=True)
            assert response.ok
            assert response.data["rowids"] == list(range(10, 51))
            assert client.update("t", "x", 0, 424_242).ok
            assert client.query("t", "x", 424_242, 424_242).data["rows"] == 1
            assert client.delete("t", "x", 1, 3).data["deleted"] == 3
            status = client.status().raise_for_error()
            assert status.data["health"] == "healthy"
            assert client.accumulated_sim_ms() > 0

    def test_sql_round_trip(self, server):
        host, port = server.address
        with ServerClient(host, port) as client:
            client.execute("CREATE TABLE s (k, v)").raise_for_error()
            rows = ", ".join(f"({i}, {i * 2})" for i in range(20))
            client.execute(f"INSERT INTO s VALUES {rows}").raise_for_error()
            result = client.execute("SELECT v FROM s WHERE k = 7")
            assert result.rows == [(14,)]
            bad = client.execute("SELECT FROM")
            assert not bad.ok

    def test_snapshot_over_the_wire(self, server):
        host, port = server.address
        with ServerClient(host, port) as reader:
            with ServerClient(host, port) as writer:
                before = reader.query("t", "x", 0, 2_000_000)
                reader.snapshot("t", "x").raise_for_error()
                writer.update("t", "x", 5, 777_777).raise_for_error()
                pinned = reader.query("t", "x", 0, 2_000_000)
                assert pinned.data["snapshot"] is True
                assert pinned.data["checksum"] == before.data["checksum"]
                reader.release_snapshot("t", "x").raise_for_error()
                live = reader.query("t", "x", 0, 2_000_000)
                assert live.data["checksum"] != before.data["checksum"]

    def test_read_only_options_travel(self, server):
        host, port = server.address
        options = SessionOptions(read_only=True)
        with ServerClient(host, port, options=options) as client:
            response = client.update("t", "x", 0, 1)
            assert not response.ok
            assert response.error_details == "ReadOnlySession"

    def test_sessions_share_warmed_views(self, server):
        """Two wire sessions hit the same engine registry: the second
        session's identical predicate reuses the first's views rather
        than building a parallel catalog."""
        host, port = server.address
        with ServerClient(host, port) as first:
            first.execute("CREATE TABLE w (k, v)").raise_for_error()
            rows = ", ".join(f"({i}, {i})" for i in range(100))
            first.execute(f"INSERT INTO w VALUES {rows}").raise_for_error()
            first.execute("SELECT * FROM w WHERE k BETWEEN 10 AND 20")
            engines = server.manager.engines()
            assert "w" in engines
            with ServerClient(host, port) as second:
                second.execute("SELECT * FROM w WHERE k BETWEEN 10 AND 20")
            assert list(server.manager.engines()) == ["w"]


class TestLifecycle:
    def test_address_requires_running_server(self):
        server = QueryServer()
        with pytest.raises(RuntimeError):
            server.address
        server.stop()

    def test_owned_manager_round_trip(self):
        with QueryServer() as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                client.execute("CREATE TABLE t (k)").raise_for_error()
                client.execute("INSERT INTO t VALUES (1), (2)")
                assert client.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_double_start_rejected(self):
        with QueryServer() as server:
            with pytest.raises(RuntimeError):
                server.start()

"""Graceful shutdown: drain in-flight statements, flush buffers + WAL."""

import threading
import time

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.server import DatabaseManager, QueryServer, ServerClient
from repro.wal import DurabilityConfig, recover_database

NUM_ROWS = 256
CONFIG = AdaptiveConfig(background_mapping=False)


def _durable_manager(tmp_path):
    manager = DatabaseManager()
    db = AdaptiveDatabase(
        config=CONFIG,
        durable_dir=str(tmp_path),
        durability=DurabilityConfig(fsync="off"),
    )
    db.create_table("t", {"x": np.arange(NUM_ROWS, dtype=np.int64)})
    manager.add_database("default", db)
    return manager, db


class TestStopFlushes:
    def test_stop_flushes_staged_rows(self, tmp_path):
        manager, db = _durable_manager(tmp_path)
        server = QueryServer(manager=manager)
        server.start()
        with ServerClient(*server.address) as client:
            assert client.query("t", "x", 0, 10).ok
        db.insert("t", {"x": 5_000_000})  # staged in the write buffer
        assert len(db._write_buffers["t"]) > 0
        server.stop()
        # The staged insert was merged into the columns before exit.
        assert not db._write_buffers.get("t")
        assert db.table("t").num_rows == NUM_ROWS + 1
        manager.close()

    def test_acked_writes_survive_stop_then_recovery(self, tmp_path):
        manager, db = _durable_manager(tmp_path)
        server = QueryServer(manager=manager)
        server.start()
        with ServerClient(*server.address) as client:
            assert client.update("t", "x", 3, -5).ok
            assert client.delete("t", "x", 10, 20).ok
        db.insert("t", {"x": 7_000_000})  # staged, unflushed
        server.stop()
        # Abandon the database object without close(): the WAL already
        # holds everything stop() acked.
        recovered, report = recover_database(tmp_path)
        try:
            result = recovered.query("t", "x", -100, 10_000_000)
            values = set(int(v) for v in result.values)
            assert 7_000_000 in values
            assert -5 in values
            assert not values & set(range(10, 21))
            audit = recovered.audit()
            assert audit.ok, audit.render()
        finally:
            recovered.close()
        manager.close()

    def test_stop_without_manager_ownership_keeps_manager_open(self, tmp_path):
        manager, db = _durable_manager(tmp_path)
        server = QueryServer(manager=manager)
        server.start()
        server.stop()
        # The externally-owned manager (and its database) stay usable.
        db.insert("t", {"x": 1})
        manager.close()


class TestDrain:
    def test_stop_waits_for_inflight_request(self, tmp_path):
        manager, _ = _durable_manager(tmp_path)
        server = QueryServer(manager=manager)
        server.start()
        srv = server._server
        srv.request_started()  # a statement is mid-dispatch
        stopper = threading.Thread(
            target=server.stop, kwargs={"drain_timeout": 10.0}
        )
        stopper.start()
        time.sleep(0.3)
        assert stopper.is_alive(), "stop() returned with a request in flight"
        srv.request_finished()
        stopper.join(timeout=10)
        assert not stopper.is_alive()
        manager.close()

    def test_drain_times_out_rather_than_hanging(self, tmp_path):
        manager, _ = _durable_manager(tmp_path)
        server = QueryServer(manager=manager)
        server.start()
        srv = server._server
        srv.request_started()
        start = time.monotonic()
        server.stop(drain_timeout=0.2)
        assert time.monotonic() - start < 5
        srv.request_finished()
        manager.close()

    def test_inflight_counter_balances_over_requests(self, tmp_path):
        manager, _ = _durable_manager(tmp_path)
        with QueryServer(manager=manager) as server:
            srv = server._server
            with ServerClient(*server.address) as client:
                for _ in range(3):
                    assert client.query("t", "x", 0, 10).ok
                assert srv._inflight == 0
        manager.close()

"""Snapshot isolation: pinned readers get repeatable, oracle-exact reads."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.server import DatabaseManager, SessionOptions, result_digest
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 8
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE
FULL_RANGE = (0, 2_000_000)


def _values() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64)


def _digest_of(values: np.ndarray, deleted: np.ndarray | None = None) -> str:
    """Numpy oracle: the digest a full-domain query must return."""
    rowids = np.arange(values.size, dtype=np.int64)
    if deleted is not None:
        rowids = rowids[~deleted]
        values = values[~deleted]
    return result_digest(rowids, values)


@pytest.fixture
def manager():
    with DatabaseManager() as mgr:
        db = mgr.create_database(
            config=AdaptiveConfig(background_mapping=False)
        )
        db.create_table("t", {"x": _values()})
        yield mgr


class TestSnapshotReads:
    def test_pinned_reader_is_repeatable_across_flushed_writes(self, manager):
        """The acceptance scenario: reader pins, a writer interleaves
        update+flush cycles, and every pinned read answers the pin-time
        state exactly (checked against the numpy oracle)."""
        reader = manager.open_session()
        writer = manager.open_session()

        pin_oracle = _digest_of(_values())
        pinned = reader.snapshot("t", "x")
        assert pinned.ok
        assert pinned.data["table"] == "t"

        live = _values()
        for step in range(4):
            row = step * VALUES_PER_PAGE + 7
            value = 1_000_000 + step
            assert writer.update("t", "x", row, value).ok  # autocommit flush
            live[row] = value

            view = reader.query("t", "x", *FULL_RANGE)
            assert view.ok
            assert view.data["snapshot"] is True
            assert view.data["rows"] == NUM_ROWS
            assert view.data["checksum"] == pin_oracle

        # The live state really did move underneath the snapshot.
        fresh = writer.query("t", "x", *FULL_RANGE)
        assert fresh.data["checksum"] == _digest_of(live)
        assert fresh.data["checksum"] != pin_oracle

        reader.close()
        writer.close()

    def test_release_returns_to_the_live_state(self, manager):
        with manager.open_session() as reader, manager.open_session() as writer:
            reader.snapshot("t", "x")
            writer.update("t", "x", 5, 1_234_567)
            live = _values()
            live[5] = 1_234_567

            pinned_view = reader.query("t", "x", *FULL_RANGE)
            assert pinned_view.data["checksum"] == _digest_of(_values())

            released = reader.release_snapshot("t", "x")
            assert released.ok
            assert released.data["copied_pages"] >= 1

            live_view = reader.query("t", "x", *FULL_RANGE)
            assert live_view.data["snapshot"] is False
            assert live_view.data["checksum"] == _digest_of(live)

    def test_pinned_reader_ignores_later_deletes(self, manager):
        with manager.open_session() as reader, manager.open_session() as writer:
            reader.snapshot("t", "x")
            assert writer.delete("t", "x", 100, 199).data["deleted"] == 100

            pinned_view = reader.query("t", "x", *FULL_RANGE)
            assert pinned_view.data["rows"] == NUM_ROWS
            assert pinned_view.data["checksum"] == _digest_of(_values())

            deleted = np.zeros(NUM_ROWS, dtype=bool)
            deleted[100:200] = True
            live_view = writer.query("t", "x", *FULL_RANGE)
            assert live_view.data["rows"] == NUM_ROWS - 100
            assert live_view.data["checksum"] == _digest_of(
                _values(), deleted
            )

    def test_pin_time_tombstones_are_honoured(self, manager):
        with manager.open_session() as session:
            session.delete("t", "x", 0, 49)
            session.snapshot("t", "x")
            deleted = np.zeros(NUM_ROWS, dtype=bool)
            deleted[0:50] = True
            view = session.query("t", "x", *FULL_RANGE)
            assert view.data["rows"] == NUM_ROWS - 50
            assert view.data["checksum"] == _digest_of(_values(), deleted)

    def test_snapshot_shields_reader_from_batched_writer(self, manager):
        """Values land in the pages at write time (pending updates are
        view alignment, not visibility) — the snapshot still answers
        pin time through the whole batch-then-commit cycle."""
        options = SessionOptions(autocommit=False)
        db = manager.database()
        with manager.open_session(options=options) as writer:
            with manager.open_session() as reader:
                reader.snapshot("t", "x")
                assert writer.update("t", "x", 9, 1_111_111).data == {
                    "old_value": 9,
                    "flushed": False,
                }
                assert len(db.table("t").pending_updates("x")) == 1

                live = _values()
                live[9] = 1_111_111
                # A live read aligns the batch and sees the new value...
                assert (
                    writer.query("t", "x", *FULL_RANGE).data["checksum"]
                    == _digest_of(live)
                )
                writer.commit()
                # ... while the pinned reader still answers pin time.
                pinned_view = reader.query("t", "x", *FULL_RANGE)
                assert pinned_view.data["checksum"] == _digest_of(_values())


class TestTieredSnapshotIsolation:
    """Bit-identity regression: pinning over a :class:`TieredPageStore`
    answers pin time while demotion/promotion churns the placement."""

    @pytest.fixture
    def tiered_manager(self):
        from repro.tier import TierConfig

        with DatabaseManager() as mgr:
            db = mgr.create_database(
                config=AdaptiveConfig(background_mapping=False),
                tiering=TierConfig(hot_budget=2),
            )
            db.create_table("t", {"x": _values()})
            yield mgr

    def test_pinned_reader_survives_tier_churn(self, tiered_manager):
        """A pinned reader stays bit-identical to pin time while a
        writer's updates and flushes demote and promote pages under it."""
        db = tiered_manager.database()
        store = db.table("t").column("x").file
        assert store.hot_count() <= 2

        reader = tiered_manager.open_session()
        writer = tiered_manager.open_session()
        pin_oracle = _digest_of(_values())
        assert reader.snapshot("t", "x").ok

        live = _values()
        churn_before = store.promotions + store.demotions
        for step in range(6):
            row = (step % NUM_PAGES) * VALUES_PER_PAGE + 3
            value = 1_500_000 + step
            assert writer.update("t", "x", row, value).ok
            live[row] = value
            # Back-to-back live queries drive the placement around:
            # cold pages accumulate hits past the promotion threshold,
            # then maintenance demotes back down to budget.
            assert writer.query("t", "x", *FULL_RANGE).ok
            assert writer.query("t", "x", *FULL_RANGE).ok
            store.maintenance(db.cost)

            view = reader.query("t", "x", *FULL_RANGE)
            assert view.ok and view.data["snapshot"] is True
            assert view.data["checksum"] == pin_oracle, (
                f"step {step}: pinned read diverged from pin time"
            )

        # The placement genuinely churned underneath the snapshot and
        # the live state moved on.
        assert store.promotions + store.demotions > churn_before
        assert store.hot_count() <= 2 + store.governor.debt
        fresh = writer.query("t", "x", *FULL_RANGE)
        assert fresh.data["checksum"] == _digest_of(live)
        assert fresh.data["checksum"] != pin_oracle

        reader.close()
        writer.close()
        # Pins released: the audit (tier-placement included) is clean.
        audit = db.audit()
        assert audit.ok, audit.render()

    def test_release_over_tiered_store_returns_to_live(self, tiered_manager):
        db = tiered_manager.database()
        with tiered_manager.open_session() as session:
            session.snapshot("t", "x")
            session_live = _values()
            assert session.release_snapshot("t", "x").ok
            view = session.query("t", "x", *FULL_RANGE)
            assert view.data["snapshot"] is False
            assert view.data["checksum"] == _digest_of(session_live)
            audit = db.audit()
            assert audit.ok, audit.render()


class TestSnapshotLifecycle:
    def test_double_pin_rejected(self, manager):
        with manager.open_session() as session:
            assert session.snapshot("t", "x").ok
            second = session.snapshot("t", "x")
            assert not second.ok
            assert "already pinned" in second.error

    def test_release_without_pin_rejected(self, manager):
        with manager.open_session() as session:
            response = session.release_snapshot("t", "x")
            assert not response.ok
            assert "no snapshot pinned" in response.error

    def test_close_releases_pins(self, manager):
        session = manager.open_session()
        session.snapshot("t", "x")
        assert session.status().data["pinned_snapshots"] == ["t.x"]
        session.close()
        # A fresh session can pin again: the slot was truly released.
        with manager.open_session() as again:
            assert again.snapshot("t", "x").ok

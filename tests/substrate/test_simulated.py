"""Unit tests for the simulated substrate and the backend factory.

The critical invariant: :class:`SimulatedSubstrate` delegates *verbatim*
to the VM calls the layers used to issue directly, so the cost-ledger
stream is bit-identical to pre-substrate code.  The bit-identity guard
below replays the same operation sequence through the substrate and
through a raw :class:`~repro.vm.mmap_api.MemoryMapper` and compares the
complete ledger snapshots.
"""

import numpy as np
import pytest

from repro.storage.table import Catalog
from repro.substrate import (
    BACKENDS,
    SHM_PREFIX,
    SimulatedSubstrate,
    Substrate,
    as_substrate,
    make_substrate,
)
from repro.vm.cost import CostModel
from repro.vm.errors import FileError
from repro.vm.mmap_api import MemoryMapper
from repro.vm.physical import PhysicalMemory


@pytest.fixture
def sub() -> SimulatedSubstrate:
    return SimulatedSubstrate(
        memory=PhysicalMemory(capacity_bytes=64 * 1024 * 1024, cost=CostModel())
    )


class TestFactory:
    def test_backend_names(self):
        assert BACKENDS == ("simulated", "native")

    def test_default_is_simulated(self):
        sub = make_substrate("simulated")
        assert isinstance(sub, SimulatedSubstrate)
        assert sub.backend == "simulated"

    def test_instance_passes_through(self, sub):
        assert make_substrate(sub) is sub

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_substrate("gpu")

    def test_capacity_and_cost_forwarded(self):
        cost = CostModel()
        sub = make_substrate(
            "simulated", capacity_bytes=16 * 1024 * 1024, cost=cost
        )
        assert sub.cost is cost
        assert sub.memory.capacity_pages == 16 * 1024 * 1024 // 4096


class TestAsSubstrate:
    def test_substrate_identity(self, sub):
        assert as_substrate(sub) is sub

    def test_mapper_adopted(self, memory):
        mapper = MemoryMapper(memory)
        sub = as_substrate(mapper)
        assert isinstance(sub, SimulatedSubstrate)
        assert sub.mapper is mapper
        assert sub.memory is memory

    def test_physical_memory_wrapped(self, memory):
        sub = as_substrate(memory)
        assert sub.memory is memory
        assert sub.cost is memory.cost

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_substrate(42)


class TestProtocolDelegation:
    def test_file_lifecycle(self, sub):
        file = sub.create_file("col", 8)
        assert sub.get_file("col") is file
        assert file in sub.files()
        assert sub.file_map_path(file) == f"{SHM_PREFIX}col"
        sub.delete_file("col")
        with pytest.raises(FileError):
            sub.get_file("col")

    def test_reserve_then_rewire_then_read(self, sub):
        file = sub.create_file("col", 8)
        file.data[5, :3] = [7, 8, 9]
        base = sub.reserve(4)
        assert sub.read_virtual(base)[0] == 0  # reservation reads zeros
        sub.map_fixed(base + 1, 1, file, 5)
        assert list(sub.read_virtual(base + 1)[:3]) == [7, 8, 9]
        sub.unmap_slot(base + 1)
        assert sub.read_virtual(base + 1)[0] == 0

    def test_map_file_and_line_counts(self, sub):
        file = sub.create_file("col", 8)
        sub.map_file(8, file)
        base = sub.reserve(4)
        sub.map_fixed(base, 1, file, 6)
        path = sub.file_map_path(file)
        assert sub.maps_line_count(path) == 2
        assert sub.maps_line_count() == sub.address_space.num_vmas

    def test_snapshot_matches_address_space(self, sub):
        file = sub.create_file("col", 8)
        base = sub.map_file(8, file)
        snap = sub.maps_snapshot(cost=sub.cost, file_filter=sub.file_map_path(file))
        assert snap.physical_of(base + 3) == (sub.file_map_path(file), 3)

    def test_release_region_charges_mapped_pages_only(self, sub):
        file = sub.create_file("col", 8)
        base = sub.reserve(6)
        sub.map_fixed(base, 2, file, 0)
        before = sub.cost.ledger.counter("pages_unmapped")
        sub.release_region(base, 6, mapped_pages=2)
        assert sub.cost.ledger.counter("pages_unmapped") - before == 2
        assert sub.address_space.num_vmas == 0

    def test_protect_counts(self, sub):
        file = sub.create_file("col", 4)
        base = sub.map_file(4, file)
        sub.protect(base, 2, "r")
        assert sub.cost.ledger.counter("mprotect_calls") == 1


class TestBitIdentity:
    """The same op sequence through substrate and raw mapper must charge
    the ledger identically — the refactor may not move a nanosecond."""

    @staticmethod
    def _run_via_substrate(sub: SimulatedSubstrate):
        file = sub.create_file("col", 16)
        sub.map_file(16, file)
        base = sub.reserve(8)
        sub.map_fixed(base + 0, 3, file, 4)
        sub.map_fixed(base + 3, 2, file, 9, populate=True)
        sub.unmap_slot(base + 1)
        sub.protect(base + 0, 1, "r")
        sub.read_virtual(base + 4)
        sub.maps_snapshot(cost=sub.cost, file_filter=sub.file_map_path(file))
        sub.release_region(base, 8, mapped_pages=4)

    @staticmethod
    def _run_via_mapper(mapper: MemoryMapper):
        from repro.vm.procmaps import snapshot_address_space

        cost = mapper.memory.cost
        file = mapper.memory.create_file("col", 16)
        mapper.mmap(16, file=file)
        base = mapper.mmap(8)
        mapper.remap_fixed(base + 0, 3, file, 4)
        mapper.remap_fixed(base + 3, 2, file, 9, populate=True)
        mapper.mmap(1, addr=base + 1, fixed=True)
        mapper.mprotect(base + 0, 1, "r")
        mapper.read_page_values(base + 4)
        snapshot_address_space(
            mapper.address_space,
            cost=cost,
            shm_prefix=SHM_PREFIX,
            file_filter=f"{SHM_PREFIX}col",
        )
        mapper.address_space.remove_mapping(base, 8)
        cost.munmap_call(4)

    def test_ledgers_identical(self):
        sub = SimulatedSubstrate(memory=PhysicalMemory(cost=CostModel()))
        mapper = MemoryMapper(PhysicalMemory(cost=CostModel()))
        self._run_via_substrate(sub)
        self._run_via_mapper(mapper)
        assert sub.cost.ledger.snapshot() == mapper.memory.cost.ledger.snapshot()


class TestCatalogWiring:
    def test_substrate_and_memory_exclusive(self, memory, sub):
        with pytest.raises(ValueError):
            Catalog(memory=memory, substrate=sub)

    def test_catalog_adopts_substrate(self, sub):
        catalog = Catalog(substrate=sub)
        assert catalog.substrate is sub
        assert catalog.cost is sub.cost
        table = catalog.create_table(
            "t", {"x": np.arange(100, dtype=np.int64)}
        )
        assert table.column("x").substrate is sub

    def test_legacy_memory_kwarg(self, memory):
        catalog = Catalog(memory=memory)
        assert isinstance(catalog.substrate, SimulatedSubstrate)
        assert catalog.memory is memory


class TestNativeFactoryGate:
    def test_native_requested_off_linux_raises_cleanly(self):
        from repro.native import is_supported

        if is_supported():
            sub = make_substrate("native")
            try:
                assert sub.backend == "native"
                assert isinstance(sub, Substrate)
            finally:
                sub.close()
        else:
            from repro.native.rewiring import RewiringUnsupportedError

            with pytest.raises(RewiringUnsupportedError):
                make_substrate("native")

"""EXPLAIN [ANALYZE]: parser, renderer, facade and SQL execution."""

import numpy as np
import pytest

from repro import AdaptiveDatabase
from repro.sql.executor import Session
from repro.sql.nodes import ExplainStatement
from repro.sql.parser import parse
from repro.sql.render import render_statement


@pytest.fixture
def session():
    sess = Session()
    sess.execute("CREATE TABLE t (x)")
    values = np.random.default_rng(0).integers(0, 100_000, 2_000)
    rows = ", ".join(f"({int(v)})" for v in values)
    sess.execute(f"INSERT INTO t VALUES {rows}")
    return sess


# -- parsing and rendering ----------------------------------------------------


def test_parse_explain_defaults_to_plan_only():
    statement = parse("EXPLAIN SELECT x FROM t WHERE x BETWEEN 1 AND 2")
    assert isinstance(statement, ExplainStatement)
    assert statement.analyze is False


def test_parse_explain_analyze():
    statement = parse(
        "EXPLAIN ANALYZE SELECT x FROM t WHERE x BETWEEN 1 AND 2"
    )
    assert statement.analyze is True


def test_render_roundtrips_both_modes():
    for sql in (
        "EXPLAIN SELECT x FROM t WHERE x BETWEEN 1 AND 2",
        "EXPLAIN ANALYZE SELECT x FROM t WHERE x BETWEEN 1 AND 2",
    ):
        assert render_statement(parse(sql)) == sql


# -- SQL execution ------------------------------------------------------------


def test_explain_predicts_without_executing(session):
    # first EXPLAIN materializes the staged table; the snapshot isolates
    # the plan-only statement itself
    session.execute("EXPLAIN SELECT x FROM t WHERE x BETWEEN 100 AND 5000")
    before = session.db.cost.ledger.lanes()
    result = session.execute(
        "EXPLAIN SELECT x FROM t WHERE x BETWEEN 100 AND 5000"
    )
    assert "plan: " in result.message
    assert "predicted scan cost" in result.message
    assert "planner:" not in result.message
    # statement-span bookkeeping aside, no scan work was charged
    assert session.db.cost.ledger.lanes() == before


def test_explain_analyze_runs_and_reports(session):
    result = session.execute(
        "EXPLAIN ANALYZE SELECT x FROM t WHERE x BETWEEN 100 AND 5000"
    )
    message = result.message
    assert "EXPLAIN ANALYZE t.x IN [100, 5000]" in message
    assert "query [" in message and "scan [" in message
    assert "sim=" in message
    assert "planner: predicted" in message
    assert "estimated: " in message


def test_explain_analyze_agrees_with_plain_select(session):
    analyzed = session.execute(
        "EXPLAIN ANALYZE SELECT x FROM t WHERE x BETWEEN 100 AND 5000"
    )
    counted = session.execute(
        "SELECT COUNT(*) FROM t WHERE x BETWEEN 100 AND 5000"
    )
    rows = counted.rows[0][0]
    assert f"{rows} rows" in analyzed.message


# -- facade -------------------------------------------------------------------


def test_facade_explain_plan_only():
    db = AdaptiveDatabase()
    values = np.random.default_rng(1).integers(0, 100_000, 4_000, np.int64)
    db.create_table("t", {"x": values})
    report = db.explain("t", "x", 100, 5_000)
    assert not report.analyze
    assert report.target == "t.x"
    assert report.predicted_pages > 0
    assert report.plan_views[0]["full"]
    assert report.root is None
    db.close()


def test_facade_explain_analyze_measures():
    db = AdaptiveDatabase()
    values = np.random.default_rng(1).integers(0, 100_000, 4_000, np.int64)
    db.create_table("t", {"x": values})
    report = db.explain("t", "x", 100, 5_000, analyze=True)
    assert report.analyze
    assert report.root is not None
    assert report.root.name == "query"
    assert report.stats is not None
    assert report.stats.pages_scanned == report.predicted_pages
    names = [span.name for span in report.root.walk()]
    assert "scan" in names
    # predicted cost equals the executed scan span's charge: the planner
    # and the scan share one cost model
    scan = next(s for s in report.root.walk() if s.name == "scan")
    assert scan.duration_ns == pytest.approx(report.predicted_sim_ns)
    db.close()


def test_facade_explain_analyze_keeps_layer_observer_off():
    db = AdaptiveDatabase(observe=False)
    values = np.random.default_rng(1).integers(0, 100_000, 4_000, np.int64)
    db.create_table("t", {"x": values})
    layer = db.layer("t", "x")
    before = layer.observer
    db.explain("t", "x", 100, 5_000, analyze=True)
    assert layer.observer is before
    db.close()


def test_facade_explain_analyze_uses_attached_observer():
    db = AdaptiveDatabase(observe=True)
    values = np.random.default_rng(1).integers(0, 100_000, 4_000, np.int64)
    db.create_table("t", {"x": values})
    report = db.explain("t", "x", 100, 5_000, analyze=True)
    roots = db.observer.tracer.roots()
    assert report.root in roots
    db.close()

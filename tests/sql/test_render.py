"""Round-trip tests: parse(render(ast)) == ast for generated statements."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.nodes import (
    Aggregate,
    CreateTableStatement,
    ExplainStatement,
    FlushStatement,
    InsertStatement,
    RangePredicate,
    SelectStatement,
    ShowViewsStatement,
    UpdateStatement,
)
from repro.sql.parser import parse
from repro.sql.render import render_statement
from repro.vm.constants import MAX_VALUE, MIN_VALUE

_name = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    # exclude words that tokenize as keywords
    lambda s: s.upper()
    not in {
        "AND", "AVG", "BETWEEN", "BY", "COUNT", "CREATE", "EXPLAIN",
        "FLUSH", "FROM", "INSERT", "INTO", "MAX", "MIN", "ORDER",
        "SELECT", "SET", "SHOW", "SUM", "TABLE", "UPDATE", "UPDATES",
        "VALUES", "VIEWS", "WHERE",
    }
)

_value = st.integers(-(10**12), 10**12)


@st.composite
def _predicate(draw):
    column = draw(_name)
    shape = draw(st.sampled_from(["between", "eq", "ge", "le"]))
    if shape == "between":
        lo = draw(_value)
        hi = draw(st.integers(lo, 10**12))
        return RangePredicate(column=column, lo=lo, hi=hi)
    if shape == "eq":
        v = draw(_value)
        return RangePredicate(column=column, lo=v, hi=v)
    if shape == "ge":
        return RangePredicate(column=column, lo=draw(_value), hi=MAX_VALUE)
    return RangePredicate(column=column, lo=MIN_VALUE, hi=draw(_value))


@st.composite
def _predicates(draw):
    preds = draw(st.lists(_predicate(), max_size=3))
    return {p.column: p for p in {p.column: p for p in preds}.values()}


@st.composite
def _select(draw):
    table = draw(_name)
    statement = SelectStatement(table=table)
    if draw(st.booleans()):
        statement.aggregates = draw(
            st.lists(
                st.builds(
                    Aggregate,
                    function=st.sampled_from(["COUNT", "SUM", "MIN", "MAX", "AVG"]),
                    column=_name,
                ),
                min_size=1,
                max_size=3,
            )
        )
    else:
        kind = draw(st.sampled_from(["star", "columns"]))
        if kind == "star":
            statement.columns = ["*"]
        else:
            statement.columns = draw(st.lists(_name, min_size=1, max_size=3))
    statement.predicates = draw(_predicates())
    statement.order_by_rowid = draw(st.booleans()) and not statement.is_aggregate
    return statement


@settings(max_examples=200, deadline=None)
@given(statement=_select())
def test_select_roundtrip(statement):
    rendered = render_statement(statement)
    reparsed = parse(rendered)
    assert isinstance(reparsed, SelectStatement)
    assert reparsed.table == statement.table
    assert reparsed.columns == statement.columns
    assert reparsed.aggregates == statement.aggregates
    assert reparsed.order_by_rowid == statement.order_by_rowid
    assert set(reparsed.predicates) == set(statement.predicates)
    for column, predicate in statement.predicates.items():
        assert reparsed.predicates[column].lo == predicate.lo
        assert reparsed.predicates[column].hi == predicate.hi


@settings(max_examples=100, deadline=None)
@given(
    table=_name,
    columns=st.lists(_name, min_size=1, max_size=4, unique=True),
)
def test_create_roundtrip(table, columns):
    statement = CreateTableStatement(table=table, columns=columns)
    assert parse(render_statement(statement)) == statement


@settings(max_examples=100, deadline=None)
@given(
    table=_name,
    rows=st.lists(
        st.tuples(_value, _value), min_size=1, max_size=5
    ),
)
def test_insert_roundtrip(table, rows):
    statement = InsertStatement(table=table, rows=[tuple(r) for r in rows])
    assert parse(render_statement(statement)) == statement


@settings(max_examples=100, deadline=None)
@given(table=_name, column=_name, value=_value, predicates=_predicates())
def test_update_roundtrip(table, column, value, predicates):
    statement = UpdateStatement(
        table=table, column=column, value=value, predicates=predicates
    )
    reparsed = parse(render_statement(statement))
    assert isinstance(reparsed, UpdateStatement)
    assert (reparsed.table, reparsed.column, reparsed.value) == (
        table, column, value,
    )
    assert set(reparsed.predicates) == set(predicates)


def test_other_statements_roundtrip():
    for statement in (
        FlushStatement(table="t"),
        ShowViewsStatement(table="t", column="c"),
    ):
        assert parse(render_statement(statement)) == statement
    explain = ExplainStatement(select=SelectStatement(table="t", columns=["*"]))
    reparsed = parse(render_statement(explain))
    assert isinstance(reparsed, ExplainStatement)
    assert reparsed.select.table == "t"


def test_unconstrained_predicate_dropped():
    from repro.sql.render import render_predicates

    pred = RangePredicate(column="a")  # [-inf, inf]
    assert render_predicates({"a": pred}) == ""

"""Unit and integration tests for SQL execution."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.sql import ExecutionError, ResultTable, Session


@pytest.fixture
def session():
    with Session(AdaptiveConfig(max_views=10)) as sess:
        yield sess


@pytest.fixture
def loaded(session):
    session.execute("CREATE TABLE t (k, v)")
    rows = ", ".join(f"({i}, {i * 10})" for i in range(100))
    session.execute(f"INSERT INTO t VALUES {rows}")
    return session


class TestCreateInsert:
    def test_create_stages(self, session):
        result = session.execute("CREATE TABLE t (a, b)")
        assert "staged" in result.message

    def test_duplicate_create_rejected(self, session):
        session.execute("CREATE TABLE t (a)")
        with pytest.raises(ExecutionError):
            session.execute("CREATE TABLE t (a)")

    def test_insert_requires_staged_table(self, session):
        with pytest.raises(ExecutionError):
            session.execute("INSERT INTO ghost VALUES (1)")

    def test_insert_arity_checked_against_schema(self, session):
        session.execute("CREATE TABLE t (a, b)")
        with pytest.raises(ExecutionError):
            session.execute("INSERT INTO t VALUES (1)")

    def test_query_on_empty_staged_table_rejected(self, session):
        session.execute("CREATE TABLE t (a)")
        with pytest.raises(ExecutionError):
            session.execute("SELECT * FROM t")

    def test_insert_after_materialization_rejected(self, loaded):
        loaded.execute("SELECT * FROM t WHERE k = 1")
        with pytest.raises(ExecutionError):
            loaded.execute("INSERT INTO t VALUES (1, 2)")


class TestSelect:
    def test_between(self, loaded):
        result = loaded.execute(
            "SELECT v FROM t WHERE k BETWEEN 10 AND 12 ORDER BY rowid"
        )
        assert result.rows == [(100,), (110,), (120,)]

    def test_star_projects_all_columns(self, loaded):
        result = loaded.execute("SELECT * FROM t WHERE k = 5")
        assert result.columns == ["k", "v"]
        assert result.rows == [(5, 50)]

    def test_no_where_returns_everything(self, loaded):
        result = loaded.execute("SELECT k FROM t")
        assert len(result) == 100

    def test_multi_column_conjunction(self, loaded):
        result = loaded.execute(
            "SELECT k FROM t WHERE k >= 10 AND v <= 150 ORDER BY rowid"
        )
        assert result.rows == [(10,), (11,), (12,), (13,), (14,), (15,)]

    def test_contradictory_predicate_is_empty(self, loaded):
        result = loaded.execute("SELECT k FROM t WHERE k > 5 AND k < 3")
        assert len(result) == 0

    def test_unknown_column_rejected(self, loaded):
        with pytest.raises(ExecutionError):
            loaded.execute("SELECT ghost FROM t")
        with pytest.raises(ExecutionError):
            loaded.execute("SELECT k FROM t WHERE ghost = 1")

    def test_unknown_table_rejected(self, session):
        with pytest.raises(ExecutionError):
            session.execute("SELECT * FROM ghost")

    def test_repeat_query_uses_views(self, loaded):
        loaded.execute("SELECT k FROM t WHERE k BETWEEN 10 AND 30")
        engine = loaded._engines["t"]
        assert engine.layer("k").view_index.num_partials >= 0
        # the second run returns identical rows (routed via views)
        a = loaded.execute("SELECT k FROM t WHERE k BETWEEN 10 AND 30")
        b = loaded.execute("SELECT k FROM t WHERE k BETWEEN 10 AND 30")
        assert a.rows == b.rows


class TestAggregates:
    def test_count_sum_min_max_avg(self, loaded):
        result = loaded.execute(
            "SELECT COUNT(k), SUM(v), MIN(v), MAX(v), AVG(v) "
            "FROM t WHERE k BETWEEN 0 AND 9"
        )
        assert result.columns == [
            "count(k)", "sum(v)", "min(v)", "max(v)", "avg(v)",
        ]
        assert result.rows == [(10, 450, 0, 90, 45.0)]

    def test_aggregate_on_empty_selection(self, loaded):
        result = loaded.execute("SELECT COUNT(k), SUM(v) FROM t WHERE k = -1")
        assert result.rows == [(0, None)]

    def test_scalar_helper(self, loaded):
        result = loaded.execute("SELECT COUNT(k) FROM t")
        assert result.scalar() == 100

    def test_count_star(self, loaded):
        assert loaded.execute("SELECT COUNT(*) FROM t").scalar() == 100
        assert (
            loaded.execute("SELECT COUNT(*) FROM t WHERE k < 10").scalar() == 10
        )

    def test_count_star_combined_with_other_aggregates(self, loaded):
        result = loaded.execute(
            "SELECT COUNT(*), SUM(v) FROM t WHERE k BETWEEN 0 AND 4"
        )
        assert result.rows == [(5, 100)]

    def test_star_only_valid_for_count(self, loaded):
        from repro.sql import ParseError

        with pytest.raises(ParseError):
            loaded.execute("SELECT SUM(*) FROM t")

    def test_scalar_rejects_non_scalar(self, loaded):
        result = loaded.execute("SELECT k FROM t")
        with pytest.raises(ExecutionError):
            result.scalar()


class TestUpdateAndFlush:
    def test_update_by_predicate(self, loaded):
        result = loaded.execute("UPDATE t SET v = 0 WHERE k BETWEEN 10 AND 19")
        assert "10 rows updated" in result.message
        check = loaded.execute("SELECT v FROM t WHERE k BETWEEN 10 AND 19")
        assert all(row == (0,) for row in check.rows)

    def test_update_without_where_hits_all_rows(self, loaded):
        loaded.execute("UPDATE t SET v = 7")
        assert loaded.execute("SELECT COUNT(v) FROM t WHERE v = 7").scalar() == 100

    def test_update_unknown_column_rejected(self, loaded):
        with pytest.raises(ExecutionError):
            loaded.execute("UPDATE t SET ghost = 1")

    def test_flush_realigns_views(self, loaded):
        loaded.execute("SELECT v FROM t WHERE v BETWEEN 100 AND 200")
        loaded.execute("UPDATE t SET v = 150 WHERE k = 50")
        message = loaded.execute("FLUSH UPDATES t").message
        assert "views realigned" in message
        # query after flush sees the new value through the views
        result = loaded.execute("SELECT k FROM t WHERE v = 150")
        assert (50,) in result.rows

    def test_queries_exact_after_update_and_flush(self, loaded):
        rng = np.random.default_rng(0)
        loaded.execute("SELECT v FROM t WHERE v BETWEEN 0 AND 500")
        for _ in range(50):
            k = int(rng.integers(0, 100))
            value = int(rng.integers(0, 1000))
            loaded.execute(f"UPDATE t SET v = {value} WHERE k = {k}")
        loaded.execute("FLUSH UPDATES t")
        table = loaded.db.table("t")
        values = table.column("v").values()
        expected = int(((values >= 0) & (values <= 500)).sum())
        assert loaded.execute(
            "SELECT COUNT(v) FROM t WHERE v BETWEEN 0 AND 500"
        ).scalar() == expected


@pytest.fixture
def multi_page(session):
    """A table spanning several pages, so partial views can pay off."""
    session.execute("CREATE TABLE big (k, v)")
    rows = ", ".join(f"({i}, {i * 3})" for i in range(2044))
    session.execute(f"INSERT INTO big VALUES {rows}")
    return session


class TestIntrospection:
    def test_show_views(self, multi_page):
        multi_page.execute("SELECT k FROM big WHERE k BETWEEN 5 AND 200")
        message = multi_page.execute("SHOW VIEWS big.k").message
        assert "view index over" in message
        assert "partial views        : 1" in message

    def test_show_views_unknown_column(self, loaded):
        with pytest.raises(ExecutionError):
            loaded.execute("SHOW VIEWS t.ghost")

    def test_explain_reports_routing(self, multi_page):
        message = multi_page.execute(
            "EXPLAIN SELECT k FROM big WHERE k BETWEEN 5 AND 200"
        ).message
        assert "full view" in message
        multi_page.execute("SELECT k FROM big WHERE k BETWEEN 5 AND 200")
        message = multi_page.execute(
            "EXPLAIN SELECT k FROM big WHERE k BETWEEN 6 AND 190"
        ).message
        assert "v[" in message  # now routed to a partial view

    def test_explain_without_predicate(self, loaded):
        message = loaded.execute("EXPLAIN SELECT * FROM t").message
        assert "full scan" in message

    def test_explain_includes_selectivity_estimate(self, loaded):
        message = loaded.execute(
            "EXPLAIN SELECT k FROM t WHERE k BETWEEN 0 AND 49"
        ).message
        assert "estimated:" in message
        # ~50 of 100 rows qualify; the histogram should be close
        import re

        match = re.search(r"~(\d+) rows", message)
        assert match is not None
        assert 35 <= int(match.group(1)) <= 65


class TestResultTable:
    def test_pretty_renders_rows(self, loaded):
        text = loaded.execute("SELECT k FROM t WHERE k <= 1 ORDER BY rowid").pretty()
        assert "| k |" in text

    def test_pretty_message_only(self):
        assert ResultTable(columns=[], message="hi").pretty() == "hi"

    def test_iteration(self, loaded):
        result = loaded.execute("SELECT k FROM t WHERE k <= 2 ORDER BY rowid")
        assert list(result) == [(0,), (1,), (2,)]

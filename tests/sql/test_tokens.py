"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.errors import TokenizeError
from repro.sql.tokens import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)]


class TestTokenize:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("myTable _col2")
        assert tokens[0] == Token(TokenType.IDENTIFIER, "myTable", 0)
        assert tokens[1].value == "_col2"

    def test_numbers(self):
        tokens = tokenize("42 -17 1_000_000")
        assert [t.value for t in tokens[:-1]] == ["42", "-17", "1000000"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_symbols(self):
        tokens = tokenize("( ) , ; * = < > <= >= .")
        values = [t.value for t in tokens[:-1]]
        assert values == ["(", ")", ",", ";", "*", "=", "<", ">", "<=", ">=", "."]
        assert all(t.type is TokenType.SYMBOL for t in tokens[:-1])

    def test_two_char_symbols_win(self):
        tokens = tokenize("a<=1")
        assert tokens[1].value == "<="

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- the projection\n a")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "a"]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END
        assert tokenize("a")[-1].type is TokenType.END

    def test_positions_recorded(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4

    def test_bad_character_rejected(self):
        with pytest.raises(TokenizeError) as info:
            tokenize("a @ b")
        assert info.value.position == 2

    def test_full_statement(self):
        tokens = tokenize("SELECT a FROM t WHERE a BETWEEN 1 AND 2;")
        assert tokens[-2].value == ";"
        assert len(tokens) == 12  # 10 lexemes + ';' + END

    def test_helpers(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
        assert not token.is_symbol("*")

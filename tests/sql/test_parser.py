"""Unit tests for the SQL parser."""

import pytest

from repro.sql.errors import ParseError
from repro.sql.nodes import (
    CreateTableStatement,
    ExplainStatement,
    FlushStatement,
    InsertStatement,
    SelectStatement,
    ShowViewsStatement,
    UpdateStatement,
)
from repro.sql.parser import parse
from repro.vm.constants import MAX_VALUE, MIN_VALUE


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, SelectStatement)
        assert stmt.columns == ["*"]
        assert stmt.table == "t"
        assert stmt.predicates == {}

    def test_column_list(self):
        stmt = parse("SELECT a, b, c FROM t")
        assert stmt.columns == ["a", "b", "c"]

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 10 AND 20")
        pred = stmt.predicates["a"]
        assert (pred.lo, pred.hi) == (10, 20)

    def test_equality(self):
        stmt = parse("SELECT a FROM t WHERE a = 5")
        pred = stmt.predicates["a"]
        assert (pred.lo, pred.hi) == (5, 5)

    def test_open_ranges(self):
        stmt = parse("SELECT a FROM t WHERE a >= 3")
        assert stmt.predicates["a"].lo == 3
        assert stmt.predicates["a"].hi == MAX_VALUE
        stmt = parse("SELECT a FROM t WHERE a <= 9")
        assert stmt.predicates["a"].lo == MIN_VALUE
        assert stmt.predicates["a"].hi == 9

    def test_strict_inequalities(self):
        stmt = parse("SELECT a FROM t WHERE a > 3 AND a < 9")
        pred = stmt.predicates["a"]
        assert (pred.lo, pred.hi) == (4, 8)

    def test_conjunction_merges_per_column(self):
        stmt = parse(
            "SELECT a FROM t WHERE a >= 0 AND a <= 100 AND a BETWEEN 10 AND 200"
        )
        pred = stmt.predicates["a"]
        assert (pred.lo, pred.hi) == (10, 100)

    def test_multi_column_conjunction(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 AND b BETWEEN 2 AND 3")
        assert set(stmt.predicates) == {"a", "b"}

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(a), SUM(b), AVG(c) FROM t")
        assert stmt.is_aggregate
        assert [a.function for a in stmt.aggregates] == ["COUNT", "SUM", "AVG"]
        assert [a.column for a in stmt.aggregates] == ["a", "b", "c"]
        assert stmt.aggregates[0].label == "count(a)"

    def test_order_by_rowid(self):
        stmt = parse("SELECT a FROM t ORDER BY rowid")
        assert stmt.order_by_rowid

    def test_order_by_other_column_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t ORDER BY a")

    def test_negative_bounds(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN -10 AND -1")
        assert (stmt.predicates["a"].lo, stmt.predicates["a"].hi) == (-10, -1)

    def test_inverted_between_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE a BETWEEN 5 AND 1")

    def test_trailing_semicolon_ok(self):
        parse("SELECT * FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t nonsense")


class TestCreateInsert:
    def test_create(self):
        stmt = parse("CREATE TABLE sensors (ts, temp, site)")
        assert isinstance(stmt, CreateTableStatement)
        assert stmt.columns == ["ts", "temp", "site"]

    def test_create_duplicate_columns_rejected(self):
        with pytest.raises(ParseError):
            parse("CREATE TABLE t (a, a)")

    def test_insert(self):
        stmt = parse("INSERT INTO t VALUES (1, 2), (3, 4)")
        assert isinstance(stmt, InsertStatement)
        assert stmt.rows == [(1, 2), (3, 4)]

    def test_insert_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO t VALUES (1, 2), (3)")


class TestOtherStatements:
    def test_update(self):
        stmt = parse("UPDATE t SET a = 7 WHERE b BETWEEN 1 AND 2")
        assert isinstance(stmt, UpdateStatement)
        assert (stmt.column, stmt.value) == ("a", 7)
        assert "b" in stmt.predicates

    def test_update_without_where(self):
        stmt = parse("UPDATE t SET a = 7")
        assert stmt.predicates == {}

    def test_flush(self):
        stmt = parse("FLUSH UPDATES t")
        assert isinstance(stmt, FlushStatement)
        assert stmt.table == "t"

    def test_show_views(self):
        stmt = parse("SHOW VIEWS t.col")
        assert isinstance(stmt, ShowViewsStatement)
        assert (stmt.table, stmt.column) == ("t", "col")

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT a FROM t WHERE a = 1")
        assert isinstance(stmt, ExplainStatement)
        assert stmt.select.table == "t"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "DROP TABLE t",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a t",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a",
            "SELECT a FROM t WHERE a BETWEEN 1",
            "SELECT a FROM t WHERE a <> 1",
            "INSERT INTO t VALUES ()",
            "CREATE TABLE t ()",
            "SELECT COUNT a FROM t",
            "SHOW VIEWS t",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

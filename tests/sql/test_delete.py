"""Tests for DELETE (tombstones) across the table, facade and SQL layers."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.sql import DeleteStatement, Session, parse
from repro.sql.render import render_statement
from repro.vm.constants import VALUES_PER_PAGE


@pytest.fixture
def session():
    with Session(AdaptiveConfig(max_views=5)) as sess:
        sess.execute("CREATE TABLE t (k, v)")
        rows = ", ".join(f"({i}, {i * 10})" for i in range(100))
        sess.execute(f"INSERT INTO t VALUES {rows}")
        yield sess


class TestParseAndRender:
    def test_parse_delete(self):
        statement = parse("DELETE FROM t WHERE k BETWEEN 1 AND 5")
        assert isinstance(statement, DeleteStatement)
        assert statement.table == "t"
        assert statement.predicates["k"].lo == 1

    def test_parse_delete_without_where(self):
        statement = parse("DELETE FROM t")
        assert statement.predicates == {}

    def test_render_roundtrip(self):
        statement = parse("DELETE FROM t WHERE k >= 7")
        assert parse(render_statement(statement)) == statement


class TestSqlDelete:
    def test_deleted_rows_disappear_everywhere(self, session):
        session.execute("DELETE FROM t WHERE k BETWEEN 10 AND 19")
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 90
        rows = session.execute(
            "SELECT k FROM t WHERE k BETWEEN 5 AND 25 ORDER BY rowid"
        ).rows
        assert rows == [(k,) for k in [5, 6, 7, 8, 9, 20, 21, 22, 23, 24, 25]]

    def test_aggregates_skip_deleted(self, session):
        session.execute("DELETE FROM t WHERE k >= 50")
        result = session.execute("SELECT COUNT(v), MAX(v) FROM t")
        assert result.rows == [(50, 490)]

    def test_double_delete_is_idempotent(self, session):
        first = session.execute("DELETE FROM t WHERE k < 10").message
        second = session.execute("DELETE FROM t WHERE k < 10").message
        assert first == "10 rows deleted"
        assert second == "0 rows deleted"

    def test_delete_all(self, session):
        session.execute("DELETE FROM t")
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_update_of_deleted_row_rejected(self, session):
        session.execute("DELETE FROM t WHERE k = 5")
        table = session.db.table("t")
        with pytest.raises(KeyError):
            table.update("v", 5, 999)


class TestFacadeDelete:
    def test_delete_by_range(self):
        db = AdaptiveDatabase(AdaptiveConfig(max_views=5))
        db.create_table("t", {"x": np.arange(VALUES_PER_PAGE * 4)})
        deleted = db.delete("t", "x", 100, 199)
        assert deleted == 100
        result = db.query("t", "x", 0, 300)
        assert len(result) == 201  # 0..99 and 200..300
        assert not any(100 <= v <= 199 for v in result.values.tolist())
        db.close()

    def test_views_survive_deletion(self):
        """Deletion tombstones rows; the views keep their pages and
        later queries stay exact."""
        db = AdaptiveDatabase(AdaptiveConfig(max_views=5))
        db.create_table("t", {"x": np.arange(VALUES_PER_PAGE * 8)})
        db.query("t", "x", 1000, 2000)  # create a view
        original = db.layer("t", "x").view_index.partial_views[0]
        db.delete("t", "x", 1200, 1400)
        # the original view still maps its pages (tombstones only)
        assert original in db.layer("t", "x").view_index.partial_views
        assert original.num_pages > 0
        result = db.query("t", "x", 1000, 2000)
        assert len(result) == 1001 - 201
        db.close()


class TestTableTombstones:
    def test_record_iterator_skips_deleted(self):
        db = AdaptiveDatabase()
        table = db.create_table("t", {"x": np.arange(10)})
        table.delete_rows(np.array([0, 9]))
        records = list(table.record_iterator())
        assert len(records) == 8
        assert table.num_live_rows == 8
        with pytest.raises(KeyError):
            table.get_record(0)
        db.close()

    def test_delete_bounds_checked(self):
        db = AdaptiveDatabase()
        table = db.create_table("t", {"x": np.arange(10)})
        with pytest.raises(IndexError):
            table.delete_rows(np.array([10]))
        assert table.delete_rows(np.array([], dtype=np.int64)) == 0
        db.close()

"""Fuzz tests for the SQL front-end.

Two properties: (1) arbitrary text never crashes the parser with
anything but a typed SqlError; (2) generated well-formed statements
parse, execute, and produce results consistent with a numpy model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.sql import Session, SqlError, parse
from repro.sql.nodes import SelectStatement


@settings(max_examples=300, deadline=None)
@given(text=st.text(max_size=80))
def test_parser_total_on_arbitrary_text(text):
    """Any input either parses or raises a typed SqlError."""
    try:
        parse(text)
    except SqlError:
        pass


@settings(max_examples=200, deadline=None)
@given(
    text=st.text(
        alphabet=st.sampled_from(
            list("SELECTFROMWHEREANDBETWEEN()*,;=<>.0123456789abc _")
        ),
        max_size=60,
    )
)
def test_parser_total_on_sql_like_text(text):
    """SQL-shaped garbage is handled just as gracefully."""
    try:
        parse(text)
    except SqlError:
        pass


_comparison = st.one_of(
    st.tuples(st.just("BETWEEN"), st.integers(0, 500), st.integers(0, 500)),
    st.tuples(st.just("="), st.integers(0, 1000)),
    st.tuples(st.sampled_from(["<", ">", "<=", ">="]), st.integers(0, 1000)),
)


def _render_comparison(column, comp):
    if comp[0] == "BETWEEN":
        lo, hi = sorted(comp[1:])
        return f"{column} BETWEEN {lo} AND {hi}"
    return f"{column} {comp[0]} {comp[1]}"


@pytest.fixture(scope="module")
def fuzz_session():
    with Session(AdaptiveConfig(max_views=8)) as sess:
        sess.execute("CREATE TABLE f (a, b)")
        rng = np.random.default_rng(17)
        rows = ", ".join(
            f"({int(x)}, {int(y)})"
            for x, y in zip(
                rng.integers(0, 1000, 600), rng.integers(0, 1000, 600)
            )
        )
        sess.execute(f"INSERT INTO f VALUES {rows}")
        sess.execute("SELECT COUNT(a) FROM f")  # materialize the table
        a = sess.db.table("f").column("a").values()
        b = sess.db.table("f").column("b").values()
        yield sess, a, b


@settings(max_examples=80, deadline=None)
@given(
    comps=st.lists(
        st.tuples(st.sampled_from(["a", "b"]), _comparison), min_size=1, max_size=3
    )
)
def test_generated_selects_match_model(fuzz_session, comps):
    """Random conjunctive COUNT queries agree with numpy."""
    sess, a, b = fuzz_session
    where = " AND ".join(_render_comparison(col, comp) for col, comp in comps)
    sql = f"SELECT COUNT(a) FROM f WHERE {where}"

    statement = parse(sql)
    assert isinstance(statement, SelectStatement)
    mask = np.ones(a.size, dtype=bool)
    for predicate in statement.predicates.values():
        column = a if predicate.column == "a" else b
        mask &= (column >= predicate.lo) & (column <= predicate.hi)

    assert sess.execute(sql).scalar() == int(mask.sum())

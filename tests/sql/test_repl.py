"""Tests for the interactive SQL shell (driven via StringIO)."""

import io

from repro.sql.repl import run_repl


def run_script(script: str) -> str:
    stdout = io.StringIO()
    code = run_repl(stdin=io.StringIO(script), stdout=stdout)
    assert code == 0
    return stdout.getvalue()


class TestRepl:
    def test_create_insert_select(self):
        out = run_script(
            "CREATE TABLE t (a, b);\n"
            "INSERT INTO t VALUES (1, 10), (2, 20);\n"
            "SELECT b FROM t WHERE a = 2;\n"
        )
        assert "staged" in out
        assert "| 20 |" in out
        assert "(1 rows)" in out

    def test_multiline_statement(self):
        out = run_script(
            "CREATE TABLE t (a);\n"
            "INSERT INTO t VALUES (5);\n"
            "SELECT a\n"
            "FROM t\n"
            "WHERE a = 5;\n"
        )
        assert "| 5 |" in out

    def test_error_is_reported_and_session_continues(self):
        out = run_script(
            "SELECT * FROM ghost;\n"
            "CREATE TABLE t (a);\n"
            "INSERT INTO t VALUES (1);\n"
            "SELECT COUNT(a) FROM t;\n"
        )
        assert "error:" in out
        assert "count(a)" in out and "1" in out

    def test_cost_meta_command(self):
        out = run_script("\\cost\n")
        assert "accumulated simulated time" in out

    def test_quit_commands(self):
        for quit_cmd in ("\\q", "exit", "quit"):
            out = run_script(f"{quit_cmd}\nSELECT 1;\n")
            assert "bye" in out
            # nothing after the quit command ran
            assert "error" not in out

    def test_blank_lines_ignored(self):
        out = run_script("\n\n\\cost\n")
        assert "accumulated simulated time" in out

    def test_eof_exits_cleanly(self):
        assert "bye" in run_script("")

"""Unit tests for the Figure 2 data distributions."""

import numpy as np
import pytest

from repro.vm.constants import VALUES_PER_PAGE
from repro.workloads import distributions as dist


class TestUniform:
    def test_size_and_domain(self):
        values = dist.uniform(10, 0, 1000, seed=1)
        assert values.size == 10 * VALUES_PER_PAGE
        assert values.min() >= 0 and values.max() <= 1000

    def test_deterministic(self):
        assert np.array_equal(dist.uniform(4, seed=7), dist.uniform(4, seed=7))
        assert not np.array_equal(dist.uniform(4, seed=7), dist.uniform(4, seed=8))

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            dist.uniform(4, 10, 10)


class TestSine:
    def test_periodicity(self):
        values = dist.sine(400, 0, 1_000_000, period_pages=100, seed=1)
        mins, maxs = dist.per_page_min_max(values)
        levels = (mins + maxs) / 2
        # pages one period apart sit at nearly the same level
        diffs = np.abs(levels[:300] - levels[100:400])
        assert np.median(diffs) < 0.05 * 1_000_000

    def test_covers_full_amplitude(self):
        values = dist.sine(200, 0, 1_000_000, seed=1)
        assert values.min() < 100_000
        assert values.max() > 900_000

    def test_values_clipped_to_domain(self):
        values = dist.sine(100, 0, 1000, seed=1)
        assert values.min() >= 0 and values.max() <= 1000

    def test_pages_are_clustered(self):
        values = dist.sine(100, 0, 1_000_000, jitter_fraction=0.005, seed=1)
        mins, maxs = dist.per_page_min_max(values)
        spans = maxs - mins
        assert np.median(spans) < 0.02 * 1_000_000

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            dist.sine(10, period_pages=0)


class TestLinear:
    def test_monotone_page_levels(self):
        values = dist.linear(100, 0, 1_000_000, seed=1)
        mins, maxs = dist.per_page_min_max(values)
        levels = (mins + maxs) / 2
        correlation = np.corrcoef(np.arange(100), levels)[0, 1]
        assert correlation > 0.99

    def test_spans_domain(self):
        values = dist.linear(100, 0, 1_000_000, seed=1)
        mins, maxs = dist.per_page_min_max(values)
        assert mins[0] < 50_000
        assert maxs[-1] > 950_000


class TestSparse:
    def test_zero_fraction(self):
        values = dist.sparse(100, 0, 1_000_000, seed=1)
        mins, maxs = dist.per_page_min_max(values)
        zero_pages = int(np.sum((mins == 0) & (maxs == 0)))
        assert zero_pages == 90

    def test_custom_fraction(self):
        values = dist.sparse(100, 0, 1_000_000, zero_fraction=0.5, seed=1)
        mins, maxs = dist.per_page_min_max(values)
        zero_pages = int(np.sum((mins == 0) & (maxs == 0)))
        assert zero_pages == 50

    def test_bad_fraction_rejected(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                dist.sparse(10, zero_fraction=bad)

    def test_data_pages_are_uniform(self):
        values = dist.sparse(100, 0, 1_000_000, seed=1)
        data_values = values[values > 0]
        assert data_values.size > 0
        assert data_values.max() > 500_000


class TestRegistry:
    def test_generate_by_name(self):
        values = dist.generate("sine", 10, seed=3)
        assert values.size == 10 * VALUES_PER_PAGE

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            dist.generate("pareto", 10)

    def test_all_registered_generators_work(self):
        for name in dist.DISTRIBUTIONS:
            assert dist.generate(name, 4, seed=0).size == 4 * VALUES_PER_PAGE


class TestPerPageMinMax:
    def test_shapes(self):
        values = dist.uniform(8, seed=0)
        mins, maxs = dist.per_page_min_max(values)
        assert mins.shape == maxs.shape == (8,)
        assert np.all(mins <= maxs)

    def test_ragged_input_rejected(self):
        with pytest.raises(ValueError):
            dist.per_page_min_max(np.arange(VALUES_PER_PAGE + 1))

"""Unit tests for the workload extensions (zipf data, drifting queries)."""

import numpy as np
import pytest

from repro.vm.constants import VALUES_PER_PAGE
from repro.workloads.distributions import zipf
from repro.workloads.queries import shifting_hotspot


class TestZipf:
    def test_size_and_domain(self):
        values = zipf(10, 0, 1_000_000, seed=1)
        assert values.size == 10 * VALUES_PER_PAGE
        assert values.min() >= 0 and values.max() <= 1_000_000

    def test_skew_toward_low_values(self):
        values = zipf(20, 0, 1_000_000, seed=1)
        below_half = np.mean(values < 500_000)
        assert below_half > 0.6

    def test_higher_alpha_is_more_skewed(self):
        mild = zipf(20, 0, 1_000_000, alpha=1.1, seed=1)
        steep = zipf(20, 0, 1_000_000, alpha=3.0, seed=1)
        assert np.median(steep) <= np.median(mild)

    def test_deterministic(self):
        assert np.array_equal(zipf(4, seed=5), zipf(4, seed=5))

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            zipf(4, alpha=1.0)

    def test_registered(self):
        from repro.workloads.distributions import DISTRIBUTIONS

        assert "zipf" in DISTRIBUTIONS


class TestShiftingHotspot:
    def test_count_and_width(self):
        seq = shifting_hotspot(num_queries=50, selectivity=0.01, seed=1)
        assert len(seq) == 50
        widths = {q.width for q in seq}
        assert len(widths) == 1

    def test_hotspot_drifts(self):
        seq = shifting_hotspot(
            num_queries=100, selectivity=0.01, num_phases=5, seed=2
        )
        first_phase = [q.lo for q in seq.queries[:20]]
        last_phase = [q.lo for q in seq.queries[-20:]]
        assert max(first_phase) < min(last_phase)

    def test_queries_fit_domain(self):
        seq = shifting_hotspot(num_queries=80, domain=(0, 10**8), seed=3)
        for q in seq:
            assert 0 <= q.lo <= q.hi <= 10**8

    def test_phase_locality(self):
        """Queries within a phase stay inside the hotspot window."""
        seq = shifting_hotspot(
            num_queries=100,
            selectivity=0.01,
            num_phases=5,
            hotspot_fraction=0.2,
            domain=(0, 10**8),
            seed=4,
        )
        for start in range(0, 100, 20):
            phase = seq.queries[start : start + 20]
            span = max(q.hi for q in phase) - min(q.lo for q in phase)
            assert span <= 0.2 * 10**8 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            shifting_hotspot(selectivity=0.5, hotspot_fraction=0.2)
        with pytest.raises(ValueError):
            shifting_hotspot(num_queries=0)
        with pytest.raises(ValueError):
            shifting_hotspot(num_phases=0)

    def test_single_phase(self):
        seq = shifting_hotspot(num_queries=10, num_phases=1, seed=5)
        assert len(seq) == 10

"""Unit tests for workload traces (record / save / load / replay)."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.workloads.trace import (
    ReplayResult,
    TraceOp,
    WorkloadTrace,
    replay,
)

from ..conftest import reference_rows


@pytest.fixture
def db():
    database = AdaptiveDatabase(AdaptiveConfig(max_views=5))
    database.create_table(
        "t", {"x": np.sort(np.random.default_rng(0).integers(0, 10_000, 4088))}
    )
    yield database
    database.close()


def sample_trace():
    trace = WorkloadTrace()
    trace.record_query(100, 2000)
    trace.record_update(5, 1500)
    trace.record_flush()
    trace.record_query(100, 2000)
    return trace


class TestTraceOps:
    def test_roundtrip_each_kind(self):
        for op in sample_trace():
            assert TraceOp.from_dict(op.to_dict()) == op

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceOp.from_dict({"kind": "teleport"})
        with pytest.raises(ValueError):
            TraceOp(kind="teleport").to_dict()


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = trace.save(tmp_path / "trace.json")
        loaded = WorkloadTrace.load(path)
        assert list(loaded) == list(trace)

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "ops": []}))
        with pytest.raises(ValueError):
            WorkloadTrace.load(path)


class TestReplay:
    def test_replay_counts(self, db):
        result = replay(sample_trace(), db, "t", "x")
        assert isinstance(result, ReplayResult)
        assert len(result.query_stats) == 2
        assert result.updates_applied == 1
        assert result.flushes == 1
        assert result.simulated_seconds > 0

    def test_replay_results_are_exact(self, db):
        result = replay(sample_trace(), db, "t", "x")
        column = db.table("t").column("x")
        expected = reference_rows(column.values(), 100, 2000).size
        assert result.query_stats[-1].result_rows == expected

    def test_replay_is_deterministic_across_databases(self, tmp_path):
        trace = sample_trace()
        outcomes = []
        for _ in range(2):
            db = AdaptiveDatabase(AdaptiveConfig(max_views=5))
            db.create_table(
                "t",
                {"x": np.sort(np.random.default_rng(0).integers(0, 10_000, 4088))},
            )
            result = replay(trace, db, "t", "x")
            outcomes.append(
                (result.total_rows, round(result.simulated_seconds, 12))
            )
            db.close()
        assert outcomes[0] == outcomes[1]

    def test_second_query_benefits_from_first(self, db):
        result = replay(sample_trace(), db, "t", "x")
        first, second = result.query_stats
        assert second.pages_scanned <= first.pages_scanned


class TestRecordingLayer:
    def test_records_while_forwarding(self, db):
        from repro.workloads.trace import RecordingLayer

        layer = db.layer("t", "x")
        recorder = RecordingLayer(layer)
        recorder.answer_query(0, 500)
        recorder.write(3, 250)
        from repro.storage.updates import UpdateBatch, UpdateRecord

        recorder.apply_updates(
            UpdateBatch([UpdateRecord(row=3, old=0, new=250)])
        )
        kinds = [op.kind for op in recorder.trace]
        assert kinds == ["query", "update", "flush"]

    def test_recorded_trace_replays(self, db, tmp_path):
        from repro.workloads.trace import RecordingLayer

        recorder = RecordingLayer(db.layer("t", "x"))
        recorder.answer_query(0, 500)
        recorder.answer_query(600, 900)
        path = recorder.trace.save(tmp_path / "t.json")

        fresh = AdaptiveDatabase(AdaptiveConfig(max_views=5))
        fresh.create_table(
            "t", {"x": np.sort(np.random.default_rng(0).integers(0, 10_000, 4088))}
        )
        result = replay(WorkloadTrace.load(path), fresh, "t", "x")
        assert len(result.query_stats) == 2
        fresh.close()

"""Unit tests for the query sequence generators."""

import numpy as np
import pytest

from repro.workloads.queries import (
    QuerySequence,
    RangeQuery,
    fixed_selectivity,
    point_queries,
    selectivity_sweep,
)


class TestRangeQuery:
    def test_width(self):
        assert RangeQuery(10, 30).width == 20

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(10, 5)


class TestQuerySequence:
    def test_container_protocol(self):
        seq = QuerySequence([RangeQuery(0, 1), RangeQuery(2, 3)])
        assert len(seq) == 2
        assert seq[1].lo == 2
        assert [q.hi for q in seq] == [1, 3]


class TestSelectivitySweep:
    def test_paper_defaults(self):
        seq = selectivity_sweep()
        assert len(seq) == 250
        widths = sorted(q.width for q in seq)
        assert widths[0] == pytest.approx(5_000, rel=0.01)
        assert widths[-1] == pytest.approx(50_000_000, rel=0.01)

    def test_widths_step_geometrically(self):
        seq = selectivity_sweep(num_queries=5, shuffle=False)
        widths = [q.width for q in seq]
        assert widths == sorted(widths, reverse=True)
        ratios = [widths[i] / widths[i + 1] for i in range(4)]
        assert max(ratios) / min(ratios) < 1.1

    def test_queries_fit_domain(self):
        seq = selectivity_sweep(domain=(0, 10**8), seed=5)
        for q in seq:
            assert 0 <= q.lo <= q.hi <= 10**8

    def test_shuffle_is_seeded(self):
        a = selectivity_sweep(seed=4)
        b = selectivity_sweep(seed=4)
        c = selectivity_sweep(seed=5)
        assert [(q.lo, q.hi) for q in a] == [(q.lo, q.hi) for q in b]
        assert [(q.lo, q.hi) for q in a] != [(q.lo, q.hi) for q in c]

    def test_unshuffled_order_descends(self):
        seq = selectivity_sweep(num_queries=10, shuffle=False)
        widths = [q.width for q in seq]
        assert widths == sorted(widths, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            selectivity_sweep(num_queries=0)
        with pytest.raises(ValueError):
            selectivity_sweep(width_start=10, width_end=100)
        with pytest.raises(ValueError):
            selectivity_sweep(width_start=10**9, domain=(0, 10**8))


class TestFixedSelectivity:
    def test_constant_width(self):
        seq = fixed_selectivity(0.01, num_queries=50, domain=(0, 10**8))
        widths = {q.width for q in seq}
        assert widths == {10**6}

    def test_positions_vary(self):
        seq = fixed_selectivity(0.01, num_queries=50, seed=1)
        assert len({q.lo for q in seq}) > 10

    def test_fits_domain(self):
        seq = fixed_selectivity(0.10, num_queries=100, domain=(0, 10**8), seed=2)
        for q in seq:
            assert 0 <= q.lo <= q.hi <= 10**8

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_selectivity(0.0)
        with pytest.raises(ValueError):
            fixed_selectivity(1.5)
        with pytest.raises(ValueError):
            fixed_selectivity(0.5, num_queries=0)

    def test_full_selectivity(self):
        seq = fixed_selectivity(1.0, num_queries=3, domain=(0, 1000))
        assert all(q.width == 1000 for q in seq)


class TestPointQueries:
    def test_degenerate_ranges(self):
        seq = point_queries(20, domain=(0, 100), seed=0)
        assert len(seq) == 20
        assert all(q.lo == q.hi for q in seq)
        assert all(0 <= q.lo <= 100 for q in seq)

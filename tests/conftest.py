"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.column import PhysicalColumn
from repro.vm.cost import CostModel
from repro.vm.constants import VALUES_PER_PAGE
from repro.vm.mmap_api import MemoryMapper
from repro.vm.physical import PhysicalMemory


@pytest.fixture
def memory() -> PhysicalMemory:
    """A small fresh simulated machine (256 MiB)."""
    return PhysicalMemory(capacity_bytes=256 * 1024 * 1024, cost=CostModel())


@pytest.fixture
def mapper(memory: PhysicalMemory) -> MemoryMapper:
    """A fresh address space on the small machine."""
    return MemoryMapper(memory)


def build_column(
    values: np.ndarray, name: str = "col", capacity_mb: int = 256
) -> PhysicalColumn:
    """Materialize ``values`` in a brand-new simulated process."""
    memory = PhysicalMemory(capacity_bytes=capacity_mb * 1024 * 1024, cost=CostModel())
    return PhysicalColumn.create(MemoryMapper(memory), name, values)


def uniform_column(
    num_pages: int = 32,
    lo: int = 0,
    hi: int = 1_000_000,
    seed: int = 0,
    name: str = "col",
) -> PhysicalColumn:
    """A fresh column of uniform random values."""
    rng = np.random.default_rng(seed)
    values = rng.integers(lo, hi, endpoint=True, size=num_pages * VALUES_PER_PAGE)
    return build_column(values, name=name)


def reference_rows(values: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Ground-truth row ids for a range predicate."""
    return np.nonzero((values >= lo) & (values <= hi))[0]


@pytest.fixture
def small_column() -> PhysicalColumn:
    """A 32-page uniform column for quick correctness tests."""
    return uniform_column()

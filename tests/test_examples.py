"""Smoke tests: the example scripts run end to end.

Each example is executed in a subprocess exactly as a user would run it.
Only the quicker examples run here (the full-suite drivers are exercised
by the benchmarks); each must exit cleanly and print its key lines.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "routed to the new partial view" in out
        assert "partial views now held" in out

    def test_sql_session(self):
        out = run_example("sql_session.py")
        assert "partial view" in out
        assert "views realigned" in out

    def test_native_rewiring_demo(self):
        out = run_example("native_rewiring_demo.py")
        # either a full demo or a graceful unsupported-platform message
        assert "rewir" in out.lower()

    def test_snapshot_analytics(self):
        out = run_example("snapshot_analytics.py")
        assert "consistent" in out
        assert "conserved" in out

    def test_explicit_vs_virtual(self):
        out = run_example("explicit_vs_virtual.py")
        assert "identical rows" in out
        assert "virtual_view" in out

    def test_traced_query_session(self):
        out = run_example("traced_query_session.py")
        assert "simulated-time decomposition" in out
        assert "query " in out and "scan-view" in out
        assert "queries_total 24" in out

    def test_served_session(self):
        out = run_example("served_session.py")
        assert "snapshot 1 pinned" in out
        assert "repeatable read = True" in out
        assert "writer sees the moved state = True" in out
        assert "session shed (capacity; health=healthy)" in out

    def test_checkpoint_and_replay(self):
        out = run_example("checkpoint_and_replay.py")
        assert "no cold start" in out
        assert "replaying" in out

"""Sim-vs-native behavioural parity: one workload, both kernels.

The same column and the same seeded query/update sequence run once on
the simulated substrate and once on the real Linux kernel.  The two
backends must agree on everything observable above the substrate line:
query results, the page sets each partial view maps, and the number of
maps lines the column's views occupy (kernel VMA merging must match the
simulator's VMA merging).  Simulated time is *not* compared to wall
time — the ledgers measure different clocks by design.
"""

import numpy as np
import pytest

from repro import AdaptiveConfig, AdaptiveDatabase
from repro.native import is_supported

pytestmark = pytest.mark.skipif(
    not is_supported(), reason="native rewiring unsupported on this platform"
)

NUM_ROWS = 12_000
VALUE_RANGE = 1_000_000
NUM_QUERIES = 24
NUM_UPDATES = 40


def _values() -> np.ndarray:
    return np.random.default_rng(7).integers(
        0, VALUE_RANGE, NUM_ROWS, dtype=np.int64
    )


def _queries() -> list[tuple[int, int]]:
    rng = np.random.default_rng(11)
    spans = rng.integers(1_000, 60_000, NUM_QUERIES)
    los = rng.integers(0, VALUE_RANGE - spans.max(), NUM_QUERIES)
    return [(int(lo), int(lo + span)) for lo, span in zip(los, spans)]


def _run_session(backend: str) -> dict:
    """One adaptive session; returns everything parity must cover."""
    trace: dict = {"results": [], "view_pages": [], "maps_lines": []}
    with AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False), backend=backend
    ) as db:
        db.create_table("t", {"x": _values()})
        column = db.table("t").column("x")
        substrate = db.substrate
        path = substrate.file_map_path(column.file)

        queries = _queries()
        midpoint = NUM_QUERIES // 2
        for i, (lo, hi) in enumerate(queries):
            result = db.query("t", "x", lo, hi)
            order = np.argsort(result.rowids, kind="stable")
            trace["results"].append(
                (
                    result.rowids[order].tolist(),
                    result.values[order].tolist(),
                )
            )
            if i == midpoint:
                rng = np.random.default_rng(13)
                rows = rng.integers(0, NUM_ROWS, NUM_UPDATES)
                vals = rng.integers(0, VALUE_RANGE, NUM_UPDATES)
                for row, val in zip(rows.tolist(), vals.tolist()):
                    db.update("t", "x", row, int(val))
                db.flush_updates("t", "x")

        index = db.layer("t", "x").view_index
        for view in index.partial_views:
            trace["view_pages"].append(
                (view.value_range, sorted(view.mapped_fpages().tolist()))
            )
        trace["view_pages"].sort()
        trace["maps_lines"] = substrate.maps_line_count(path)
        report = db.audit()
        assert report.ok, report.render()
        trace["audit"] = report.summary()
    return trace


@pytest.fixture(scope="module")
def sessions():
    return _run_session("simulated"), _run_session("native")


class TestParity:
    def test_query_results_identical(self, sessions):
        sim, native = sessions
        assert len(sim["results"]) == NUM_QUERIES
        for i, (sim_r, nat_r) in enumerate(
            zip(sim["results"], native["results"])
        ):
            assert sim_r == nat_r, f"query {i} diverged"

    def test_results_match_ground_truth(self, sessions):
        sim, _ = sessions
        values = _values()
        lo, hi = _queries()[0]
        expected = np.sort(np.where((values >= lo) & (values <= hi))[0])
        assert sim["results"][0][0] == expected.tolist()

    def test_partial_views_map_identical_pages(self, sessions):
        sim, native = sessions
        assert sim["view_pages"] == native["view_pages"]
        assert sim["view_pages"]  # the workload must actually build views

    def test_maps_line_counts_identical(self, sessions):
        """Kernel VMA merging agrees with the simulator's merging."""
        sim, native = sessions
        assert sim["maps_lines"] == native["maps_lines"]
        assert sim["maps_lines"] > 0

    def test_audit_reports_identical(self, sessions):
        """The invariant auditor sees the same structure on both
        backends: view page sets, mapped-region counts, no findings.

        The audits are not literally the same checks — the simulated
        backend adds a page-table cross-check the native one answers
        through the kernel — so only the backend-neutral summary keys
        that must agree are compared.
        """
        sim, native = sessions
        assert sim["audit"]["findings"] == []
        assert native["audit"]["findings"] == []
        for key in ("views", "maps_regions", "mapped_pages"):
            assert sim["audit"][key] == native["audit"][key], key
        assert sim["audit"]["views"]  # non-trivial structure compared

"""Tests for the real ctypes rewiring backend.

These exercise actual mmap(MAP_FIXED) calls against tmpfs/memfd memory —
the mechanism the paper builds on — and skip gracefully on platforms
without it.
"""

import pytest

from repro.native import (
    NativeMemoryFile,
    RewiredRegion,
    is_supported,
)
from repro.vm.constants import PAGE_SIZE

pytestmark = pytest.mark.skipif(
    not is_supported(), reason="native rewiring unsupported on this platform"
)


@pytest.fixture
def file():
    with NativeMemoryFile(8) as f:
        for p in range(8):
            f.write_page(p, bytes([p + 1]) * 256)
        yield f


class TestNativeMemoryFile:
    def test_read_write_roundtrip(self, file):
        assert file.read_page(3)[:4] == b"\x04" * 4
        assert len(file.read_page(0)) == PAGE_SIZE

    def test_page_bounds(self, file):
        with pytest.raises(ValueError):
            file.read_page(8)
        with pytest.raises(ValueError):
            file.write_page(-1, b"x")

    def test_oversized_write_rejected(self, file):
        with pytest.raises(ValueError):
            file.write_page(0, b"x" * (PAGE_SIZE + 1))

    def test_close_idempotent(self):
        f = NativeMemoryFile(1)
        f.close()
        f.close()

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            NativeMemoryFile(0)


class TestRewiredRegion:
    def test_map_and_read(self, file):
        with RewiredRegion(4) as region:
            region.map_range(0, file, 5)
            assert region.read(0, 4) == b"\x06" * 4

    def test_rewire_same_virtual_page(self, file):
        """The core trick: repoint a virtual page at runtime."""
        with RewiredRegion(4) as region:
            region.map_range(2, file, 1)
            assert region.read(2, 2) == b"\x02\x02"
            region.map_range(2, file, 6)
            assert region.read(2, 2) == b"\x07\x07"

    def test_shared_write_through(self, file):
        with RewiredRegion(2) as region:
            region.map_range(0, file, 3)
            region.write(0, b"ZZ")
            assert file.read_page(3)[:2] == b"ZZ"

    def test_two_views_share_physical_page(self, file):
        """Multiple virtual pages can map the same physical page — the
        property that lets partial views overlap."""
        with RewiredRegion(4) as region:
            region.map_range(0, file, 2)
            region.map_range(3, file, 2)
            region.write(0, b"!!")
            assert region.read(3, 2) == b"!!"

    def test_coalesced_run(self, file):
        with RewiredRegion(8) as region:
            region.map_range(1, file, 4, npages=3)
            assert region.read(1, 1) == b"\x05"
            assert region.read(2, 1) == b"\x06"
            assert region.read(3, 1) == b"\x07"

    def test_unmap_then_remap(self, file):
        with RewiredRegion(2) as region:
            region.map_range(0, file, 1)
            region.unmap_range(0)
            region.map_range(0, file, 7)
            assert region.read(0, 1) == b"\x08"

    def test_bounds_checked(self, file):
        with RewiredRegion(2) as region:
            with pytest.raises(ValueError):
                region.map_range(2, file, 0)
            with pytest.raises(ValueError):
                region.map_range(0, file, 7, npages=2)
            with pytest.raises(ValueError):
                region.map_range(0, file, 0, npages=0)

    def test_close_idempotent(self):
        region = RewiredRegion(1)
        region.close()
        region.close()

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            RewiredRegion(0)

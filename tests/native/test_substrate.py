"""Unit tests for :class:`~repro.substrate.native.NativeSubstrate`.

Everything here issues real syscalls — memfd files, anonymous
``PROT_NONE`` reservations, ``mmap(MAP_FIXED)`` rewiring, reads of the
kernel's ``/proc/self/maps`` — and skips on platforms without them.
"""

import numpy as np
import pytest

from repro.native import is_supported
from repro.vm.constants import VALUES_PER_PAGE
from repro.vm.errors import FileError

pytestmark = pytest.mark.skipif(
    not is_supported(), reason="native rewiring unsupported on this platform"
)


@pytest.fixture
def sub():
    from repro.substrate.native import NativeSubstrate

    substrate = NativeSubstrate()
    yield substrate
    substrate.close()


@pytest.fixture
def file(sub):
    store = sub.create_file("t.col", 8)
    for p in range(8):
        store.data[p, :] = p * 1000 + np.arange(store.slots_per_page)
    return store


class TestNativePageStore:
    def test_layout_matches_simulated(self, file):
        assert file.num_pages == 8
        assert file.slots_per_page == VALUES_PER_PAGE
        assert file.size_bytes == 8 * 4096
        assert file.data.shape == (8, VALUES_PER_PAGE)

    def test_headers_initialized_like_memory_file(self, file):
        assert [file.page_id(p) for p in range(8)] == list(range(8))
        file.set_page_id(3, 99)
        assert file.page_id(3) == 99

    def test_page_values_roundtrip(self, file):
        assert file.page_values(5)[0] == 5000
        file.page_values(5)[0] = -7
        assert file.data[5, 0] == -7

    def test_bounds_checked(self, file):
        with pytest.raises(FileError):
            file.check_page(8)
        with pytest.raises(FileError):
            file.page_values(-1)

    def test_resize_preserves_data(self, file):
        old = file.data[:, :4].copy()
        file.resize(12)
        assert file.num_pages == 12
        assert np.array_equal(file.data[:8, :4], old)
        assert [file.page_id(p) for p in range(8, 12)] == [8, 9, 10, 11]

    def test_maps_path_is_live(self, sub, file):
        assert file.map_path in sub.maps_text()

    def test_duplicate_name_rejected(self, sub, file):
        with pytest.raises(FileError):
            sub.create_file("t.col", 2)

    def test_delete_file(self, sub, file):
        sub.delete_file("t.col")
        with pytest.raises(FileError):
            sub.get_file("t.col")


class TestNativeMapping:
    def test_reserve_reads_zeros(self, sub):
        base = sub.reserve(4)
        assert sub.read_virtual(base)[0] == 0
        assert sub.read_virtual(base + 3).shape == (VALUES_PER_PAGE,)

    def test_map_fixed_rewires_into_reservation(self, sub, file):
        base = sub.reserve(4)
        sub.map_fixed(base + 1, 1, file, 5)
        assert sub.read_virtual(base + 1)[0] == 5000
        # The core trick: repoint the same virtual page.
        sub.map_fixed(base + 1, 1, file, 2)
        assert sub.read_virtual(base + 1)[0] == 2000

    def test_unmap_slot_restores_hole(self, sub, file):
        base = sub.reserve(2)
        sub.map_fixed(base, 1, file, 7)
        assert sub.read_virtual(base)[0] == 7000
        sub.unmap_slot(base)
        assert sub.read_virtual(base)[0] == 0

    def test_write_through_store_visible_in_view(self, sub, file):
        base = sub.reserve(1)
        sub.map_fixed(base, 1, file, 4)
        file.data[4, 0] = 123456
        assert sub.read_virtual(base)[0] == 123456

    def test_map_file_whole(self, sub, file):
        base = sub.map_file(8, file)
        assert sub.read_virtual(base + 6)[0] == 6000
        assert sub.munmap(base, 8) == 8

    def test_populate_charges_soft_faults(self, sub, file):
        base = sub.reserve(2)
        before = sub.cost.ledger.counter("soft_faults")
        sub.map_fixed(base, 2, file, 0, populate=True)
        assert sub.cost.ledger.counter("soft_faults") - before == 2

    def test_release_region_drops_reservation(self, sub, file):
        base = sub.reserve(4)
        sub.map_fixed(base, 2, file, 0)
        before = sub.cost.ledger.counter("pages_unmapped")
        sub.release_region(base, 4, mapped_pages=2)
        assert sub.cost.ledger.counter("pages_unmapped") - before == 2

    def test_protect_denies_nothing_but_counts(self, sub, file):
        base = sub.map_file(2, file)
        sub.protect(base, 1, "r")
        assert sub.cost.ledger.counter("mprotect_calls") == 1
        sub.protect(base, 1, "rw")


class TestNativeMapsSource:
    def test_kernel_merges_adjacent_rewires(self, sub, file):
        """Adjacent MAP_FIXED rewires of consecutive file pages merge
        into one kernel VMA — the effect behind Figure 7's clustered
        advantage, observed on the real kernel."""
        path = sub.file_map_path(file)
        base = sub.reserve(4)
        sub.map_fixed(base, 1, file, 2)
        sub.map_fixed(base + 1, 1, file, 3)
        assert sub.maps_line_count(path) == 1

    def test_internal_store_mapping_excluded(self, sub, file):
        """The store's own whole-file mapping must not leak into
        view-level maps accounting."""
        assert sub.maps_line_count(sub.file_map_path(file)) == 0

    def test_snapshot_over_kernel_maps(self, sub, file):
        path = sub.file_map_path(file)
        base = sub.reserve(4)
        sub.map_fixed(base + 2, 1, file, 6)
        snap = sub.maps_snapshot(cost=sub.cost, file_filter=path)
        assert snap.physical_of(base + 2) == (path, 6)
        assert snap.physical_of(base) is None

    def test_wall_clock_ledger_records_syscalls(self, sub, file):
        sub.reserve(2)
        sub.maps_text()
        counts = {op: sub.wall.count(op) for op in ("reserve", "maps_read")}
        assert counts["reserve"] >= 1
        assert counts["maps_read"] >= 1
        assert sub.wall.total_ns() > 0


class TestNativeObserver:
    def test_mmap_callbacks_fire(self, sub, file):
        events = []

        class Spy:
            def on_mmap(self, kind, npages):
                events.append(("mmap", kind, npages))

            def on_munmap(self, npages):
                events.append(("munmap", npages))

        sub.set_observer(Spy())
        base = sub.reserve(2)
        sub.map_fixed(base, 1, file, 0)
        sub.unmap_slot(base)
        sub.munmap(base + 1, 1)
        kinds = [e[1] for e in events if e[0] == "mmap"]
        assert kinds == ["anon", "fixed", "anon"]
        assert ("munmap", 1) in events


class TestNativeLifecycle:
    def test_close_releases_everything(self):
        from repro.substrate.native import NativeSubstrate

        sub = NativeSubstrate()
        store = sub.create_file("x", 2)
        sub.reserve(2)
        sub.close()
        assert store.fd == -1
        assert sub._regions == {}

"""Resilience layer on the native backend: real mmap rewiring under
the retry / quarantine / governor stack.

The governor's budget check counts real ``/proc/self/maps`` lines here,
so this is the end-to-end proof that admission control and eviction
keep the kernel-visible mapping footprint bounded.
"""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.native import is_supported
from repro.resilience import HealthState, ResilienceConfig
from repro.substrate import make_substrate
from repro.vm.constants import VALUES_PER_PAGE

pytestmark = pytest.mark.skipif(
    not is_supported(), reason="native rewiring unsupported on this platform"
)

NUM_PAGES = 32
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _db(resilience, faulty=False):
    backend = make_substrate("native")
    if faulty:
        backend = FaultySubstrate(backend)
    values = np.arange(NUM_ROWS, dtype=np.int64)
    db = AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=backend,
        resilience=resilience,
    )
    db.create_table("t", {"x": values})
    db.layer("t", "x")
    return db, backend


def _check(db, lo, hi):
    res = db.query("t", "x", lo, hi)
    expected = np.arange(lo, min(hi, NUM_ROWS - 1) + 1, dtype=np.int64)
    assert np.array_equal(np.sort(res.rowids), expected)
    return res


def _page_range(fpage, npages=1):
    lo = fpage * VALUES_PER_PAGE
    return lo, lo + npages * VALUES_PER_PAGE - 1


class TestNativeGovernor:
    def test_budget_bounds_real_maps_lines(self):
        """With a budget the layer's real maps-line count never exceeds
        it, and query results stay correct throughout."""
        budget = 6
        db, _ = _db(ResilienceConfig(mapping_budget=budget, seed=0))
        with db:
            rng = np.random.default_rng(0)
            for _ in range(16):
                fpage = int(rng.integers(0, NUM_PAGES - 2))
                npages = int(rng.integers(1, 3))
                _check(db, *_page_range(fpage, npages))
                status = db.resilience_status()["layers"]["t.x"]
                assert status["maps_lines"] <= budget
            assert db.audit().ok


class TestNativeRecovery:
    def test_transient_fault_heals_and_repair_converges(self):
        db, substrate = _db(ResilienceConfig(seed=0), faulty=True)
        with db:
            substrate.schedule = FaultSchedule(
                [
                    FaultRule(ops="map_fixed", nth=1),  # transient
                    FaultRule(ops="map_fixed", nth=3, transient=False),
                ],
                seed=0,
            )
            for fpage in (1, 5, 9, 13):
                _check(db, *_page_range(fpage, 2))
            status = db.resilience_status()["layers"]["t.x"]
            assert status["retries_recovered"] >= 1
            substrate.schedule = None
            assert db.repair()
            assert db.health() is HealthState.HEALTHY
            assert db.audit().ok

"""Unit and property tests for the explicit-index baselines (§3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    VARIANTS,
    BitmapIndex,
    FullScanBaseline,
    PageVectorIndex,
    VirtualViewIndex,
    ZoneMapIndex,
)
from repro.storage.updates import UpdateBatch, UpdateRecord
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import reference_rows, uniform_column


def built_index(variant_cls, column, lo=0, hi=200_000):
    index = variant_cls(column, lo, hi)
    index.build()
    return index


def apply_and_log(column, updates):
    batch = UpdateBatch()
    for row, new in updates:
        old = column.write(row, new)
        batch.append(UpdateRecord(row=row, old=old, new=new))
    return batch


class TestRegistry:
    def test_all_four_variants_registered(self):
        assert set(VARIANTS) == {
            "zone_map",
            "bitmap",
            "page_vector",
            "virtual_view",
        }
        assert VARIANTS["zone_map"] is ZoneMapIndex
        assert VARIANTS["virtual_view"] is VirtualViewIndex


@pytest.mark.parametrize("variant_cls", list(VARIANTS.values()), ids=list(VARIANTS))
class TestAllVariants:
    def test_query_matches_reference(self, variant_cls):
        column = uniform_column(num_pages=16)
        index = built_index(variant_cls, column)
        rowids, values = index.query(50_000, 150_000)
        expected = reference_rows(column.values(), 50_000, 150_000)
        assert np.array_equal(np.sort(rowids), expected)

    def test_query_requires_build(self, variant_cls):
        column = uniform_column(num_pages=4)
        index = variant_cls(column, 0, 100)
        with pytest.raises(RuntimeError):
            index.query(0, 10)

    def test_query_outside_indexed_range_rejected(self, variant_cls):
        column = uniform_column(num_pages=4)
        index = built_index(variant_cls, column, 100, 200)
        with pytest.raises(ValueError):
            index.query(50, 150)
        with pytest.raises(ValueError):
            index.query(150, 250)

    def test_inverted_range_rejected(self, variant_cls):
        column = uniform_column(num_pages=4)
        with pytest.raises(ValueError):
            variant_cls(column, 10, 5)

    def test_indexed_pages_counts_qualifying(self, variant_cls):
        column = uniform_column(num_pages=16)
        index = built_index(variant_cls, column)
        expected = column.pages_with_values_in(0, 200_000).size
        assert index.indexed_pages() == expected

    def test_query_after_updates_matches_reference(self, variant_cls):
        column = uniform_column(num_pages=16)
        index = built_index(variant_cls, column)
        rng = np.random.default_rng(3)
        updates = [
            (int(r), int(v))
            for r, v in zip(
                rng.integers(0, column.num_rows, 300),
                rng.integers(0, 1_000_000, 300),
            )
        ]
        index.apply_updates(apply_and_log(column, updates))
        rowids, _ = index.query(0, 200_000)
        expected = reference_rows(column.values(), 0, 200_000)
        assert np.array_equal(np.sort(rowids), expected)

    def test_update_moves_value_into_range(self, variant_cls):
        column = uniform_column(num_pages=8, lo=500_000, hi=900_000)
        index = built_index(variant_cls, column, 0, 100)
        assert index.indexed_pages() == 0
        index.apply_updates(apply_and_log(column, [(3, 50)]))
        rowids, values = index.query(0, 100)
        assert rowids.tolist() == [3]
        assert values.tolist() == [50]


class TestZoneMapSpecifics:
    def test_conservative_after_removal(self):
        """Zone maps only widen: a page whose in-range value was removed
        may still be scanned, but results stay exact."""
        column = uniform_column(num_pages=8, lo=500_000, hi=900_000)
        index = built_index(ZoneMapIndex, column, 0, 100)
        index.apply_updates(apply_and_log(column, [(3, 50)]))
        index.apply_updates(apply_and_log(column, [(3, 600_000)]))
        assert index.indexed_pages() >= 1  # stale but safe
        rowids, _ = index.query(0, 100)
        assert rowids.size == 0  # exactness preserved by the scan filter

    def test_partial_last_page_min_max(self):
        values = np.concatenate(
            [np.full(VALUES_PER_PAGE, 10), np.array([5, 7])]
        )
        from ..conftest import build_column

        column = build_column(values)
        index = built_index(ZoneMapIndex, column, 0, 100)
        # page 1's zone entry must ignore the padding zeros
        assert index._page_min[1] == 5
        assert index._page_max[1] == 7


class TestBitmapSpecifics:
    def test_bit_cleared_when_page_empties(self):
        column = uniform_column(num_pages=8, lo=500_000, hi=900_000)
        index = built_index(BitmapIndex, column, 0, 100)
        index.apply_updates(apply_and_log(column, [(3, 50)]))
        assert index.indexed_pages() == 1
        index.apply_updates(apply_and_log(column, [(3, 600_000)]))
        assert index.indexed_pages() == 0


class TestPageVectorSpecifics:
    def test_removal_scatters_order(self):
        column = uniform_column(num_pages=16)
        index = built_index(PageVectorIndex, column)
        pages_before = list(index._pages)
        victim = pages_before[0]
        # empty the victim page of in-range values
        rows = [victim * VALUES_PER_PAGE + i for i in range(VALUES_PER_PAGE)]
        index.apply_updates(
            apply_and_log(column, [(r, 900_000) for r in rows])
        )
        assert victim not in index._pages
        # swap-with-last: the former last page moved to the front
        if len(pages_before) > 2:
            assert index._pages[0] == pages_before[-1]

    def test_add_is_idempotent(self):
        column = uniform_column(num_pages=8)
        index = built_index(PageVectorIndex, column)
        n = index.indexed_pages()
        index._add(index._pages[0])
        assert index.indexed_pages() == n


class TestVirtualViewSpecifics:
    def test_wraps_a_real_view(self):
        column = uniform_column(num_pages=8)
        index = built_index(VirtualViewIndex, column)
        assert index.view.num_pages == index.indexed_pages()
        assert index.view.covers(0, 200_000)

    def test_scan_is_sequential_kind(self):
        column = uniform_column(num_pages=8)
        index = built_index(VirtualViewIndex, column)
        cost = column.mapper.cost
        before = cost.ledger.lane_ns()
        index.query(0, 100_000)
        charged = cost.ledger.lane_ns() - before
        pages = index.indexed_pages()
        expected = pages * cost.params.page_scan_ns(VALUES_PER_PAGE, "seq")
        assert charged == pytest.approx(expected, rel=0.01)


class TestFullScanBaseline:
    def test_matches_reference(self):
        column = uniform_column(num_pages=8)
        baseline = FullScanBaseline(column)
        rowids, values, stats = baseline.query(100, 900_000)
        expected = reference_rows(column.values(), 100, 900_000)
        assert np.array_equal(np.sort(rowids), expected)
        assert stats.pages_scanned == 8
        assert stats.sim_ns > 0
        assert stats.result_rows == rowids.size


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 50),
    hi=st.integers(1_000, 900_000),
    updates=st.lists(
        st.tuples(st.integers(0, 8 * VALUES_PER_PAGE - 1), st.integers(0, 999_999)),
        max_size=30,
    ),
)
def test_variants_agree_with_each_other(seed, hi, updates):
    """All four variants return identical results for any workload."""
    results = []
    for variant_cls in VARIANTS.values():
        column = uniform_column(num_pages=8, seed=seed)
        index = built_index(variant_cls, column, 0, hi)
        index.apply_updates(apply_and_log(column, updates))
        rowids, _ = index.query(0, hi // 2)
        results.append(sorted(rowids.tolist()))
    assert all(r == results[0] for r in results)

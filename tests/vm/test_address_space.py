"""Unit and property tests for the address space (VMA bookkeeping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.vm.address_space import AddressSpace
from repro.vm.cost import CostModel
from repro.vm.errors import BadAddressError, MapError
from repro.vm.physical import PhysicalMemory
from repro.vm.vma import Vma


@pytest.fixture
def asp():
    return AddressSpace()


@pytest.fixture
def file():
    memory = PhysicalMemory(capacity_bytes=64 * 1024 * 1024, cost=CostModel())
    return memory.create_file("f", 256)


class TestMapping:
    def test_add_and_translate(self, asp, file):
        asp.add_mapping(Vma(start=100, npages=4, file=file, file_page=8))
        assert asp.translate(102) == (file, 10)
        assert asp.is_mapped(103)
        assert not asp.is_mapped(104)

    def test_translate_unmapped_raises(self, asp):
        with pytest.raises(BadAddressError):
            asp.translate(5)

    def test_overlap_rejected(self, asp):
        asp.add_mapping(Vma(start=10, npages=4))
        with pytest.raises(MapError):
            asp.add_mapping(Vma(start=12, npages=4))
        with pytest.raises(MapError):
            asp.add_mapping(Vma(start=8, npages=3))

    def test_adjacent_compatible_vmas_merge(self, asp, file):
        asp.add_mapping(Vma(start=0, npages=2, file=file, file_page=0))
        asp.add_mapping(Vma(start=2, npages=2, file=file, file_page=2))
        assert asp.num_vmas == 1
        assert asp.translate(3) == (file, 3)

    def test_merge_with_both_neighbours(self, asp, file):
        asp.add_mapping(Vma(start=0, npages=2, file=file, file_page=0))
        asp.add_mapping(Vma(start=4, npages=2, file=file, file_page=4))
        asp.add_mapping(Vma(start=2, npages=2, file=file, file_page=2))
        assert asp.num_vmas == 1

    def test_incompatible_neighbours_do_not_merge(self, asp, file):
        asp.add_mapping(Vma(start=0, npages=2, file=file, file_page=0))
        asp.add_mapping(Vma(start=2, npages=2, file=file, file_page=7))
        assert asp.num_vmas == 2


class TestUnmapping:
    def test_remove_whole_vma(self, asp):
        asp.add_mapping(Vma(start=10, npages=4))
        assert asp.remove_mapping(10, 4) == 4
        assert not asp.is_mapped(10)
        assert asp.num_vmas == 0

    def test_remove_splits_head_and_tail(self, asp, file):
        asp.add_mapping(Vma(start=10, npages=10, file=file, file_page=0))
        assert asp.remove_mapping(13, 4) == 4
        assert asp.num_vmas == 2
        assert asp.translate(12) == (file, 2)
        assert asp.translate(17) == (file, 7)
        assert not asp.is_mapped(15)

    def test_remove_across_holes(self, asp):
        asp.add_mapping(Vma(start=0, npages=2))
        asp.add_mapping(Vma(start=5, npages=2))
        assert asp.remove_mapping(0, 10) == 4

    def test_remove_nothing(self, asp):
        assert asp.remove_mapping(50, 5) == 0

    def test_remove_empty_range_rejected(self, asp):
        with pytest.raises(MapError):
            asp.remove_mapping(0, 0)


class TestReplace:
    def test_replace_overwrites_atomically(self, asp, file):
        asp.add_mapping(Vma(start=0, npages=8))
        asp.replace_mapping(Vma(start=2, npages=2, file=file, file_page=30))
        assert asp.translate(2) == (file, 30)
        assert asp.translate(1) is None  # anonymous remainder
        assert asp.translate(4) is None

    def test_replace_resets_fault_state(self, asp, file):
        asp.add_mapping(Vma(start=0, npages=4, file=file, file_page=0))
        assert asp.fault_in(1) is True
        assert asp.fault_in(1) is False
        asp.replace_mapping(Vma(start=0, npages=4, file=file, file_page=4))
        assert asp.fault_in(1) is True  # remap invalidates the fault


class TestFaults:
    def test_first_touch_only_once(self, asp):
        asp.add_mapping(Vma(start=0, npages=2))
        assert asp.fault_in(0) is True
        assert asp.fault_in(0) is False

    def test_fault_on_unmapped_raises(self, asp):
        with pytest.raises(BadAddressError):
            asp.fault_in(99)

    def test_unmap_clears_fault_state(self, asp):
        asp.add_mapping(Vma(start=0, npages=2))
        asp.fault_in(0)
        asp.remove_mapping(0, 2)
        asp.add_mapping(Vma(start=0, npages=2))
        assert asp.fault_in(0) is True


class TestBulkFaults:
    @pytest.mark.parametrize("fast", [True, False])
    def test_counts_first_touches_only(self, asp, fast):
        asp.add_mapping(Vma(start=0, npages=8))
        asp.fault_in(2)
        asp.fault_in(5)
        with fastpath.fast_paths() if fast else fastpath.reference_paths():
            assert asp.fault_in_range(0, 8) == 6
            assert asp.fault_in_range(0, 8) == 0

    @pytest.mark.parametrize("fast", [True, False])
    def test_range_spanning_merged_vmas(self, asp, file, fast):
        asp.add_mapping(Vma(start=0, npages=4))
        asp.add_mapping(Vma(start=4, npages=4, file=file, file_page=0))
        with fastpath.fast_paths() if fast else fastpath.reference_paths():
            assert asp.fault_in_range(2, 5) == 5

    @pytest.mark.parametrize("fast", [True, False])
    def test_unmapped_hole_raises(self, asp, fast):
        asp.add_mapping(Vma(start=0, npages=2))
        asp.add_mapping(Vma(start=4, npages=2))
        with fastpath.fast_paths() if fast else fastpath.reference_paths():
            with pytest.raises(BadAddressError):
                asp.fault_in_range(0, 6)

    def test_empty_range_rejected(self, asp):
        with pytest.raises(MapError):
            asp.fault_in_range(0, 0)

    def test_invalidation_with_sparse_fault_set(self, asp):
        # A huge remap over a barely-touched area walks the (smaller)
        # fault set, not the range — and must still forget the faults.
        asp.add_mapping(Vma(start=0, npages=10_000))
        asp.fault_in(17)
        asp.fault_in(9_000)
        asp.fault_in(3)
        asp.remove_mapping(10, 9_980)  # drops 17 and 9000, keeps 3
        asp.add_mapping(Vma(start=10, npages=9_980))
        assert asp.fault_in(17) is True
        assert asp.fault_in(9_000) is True
        assert asp.fault_in(3) is False


class TestGeneration:
    def test_bumped_by_every_mapping_mutation(self, asp, file):
        start = asp.generation
        asp.add_mapping(Vma(start=0, npages=4, file=file, file_page=0))
        assert asp.generation == start + 1
        asp.protect_mapping(0, 2, "r")
        assert asp.generation == start + 2
        asp.replace_mapping(Vma(start=0, npages=2, file=file, file_page=8))
        assert asp.generation == start + 3
        asp.remove_mapping(0, 4)
        assert asp.generation == start + 4

    def test_not_bumped_by_faults_or_queries(self, asp):
        asp.add_mapping(Vma(start=0, npages=4))
        before = asp.generation
        asp.fault_in(0)
        asp.fault_in_range(1, 3)
        asp.find_vma(2)
        assert asp.generation == before


class TestAllocator:
    def test_regions_do_not_collide(self, asp):
        a = asp.allocate_region(16)
        b = asp.allocate_region(16)
        assert b >= a + 16

    def test_allocator_skips_fixed_mappings(self, asp):
        a = asp.allocate_region(4)
        asp.add_mapping(Vma(start=a + 100, npages=8))
        c = asp.allocate_region(4)
        assert c >= a + 108

    def test_empty_allocation_rejected(self, asp):
        with pytest.raises(MapError):
            asp.allocate_region(0)


@settings(max_examples=150, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["map", "unmap", "replace"]),
            st.integers(0, 60),
            st.integers(1, 12),
        ),
        max_size=40,
    )
)
def test_address_space_matches_page_model(ops):
    """VMA bookkeeping must agree with a naive page-by-page model."""
    asp = AddressSpace()
    model: dict[int, int | None] = {}
    memory = PhysicalMemory(capacity_bytes=1024 * 4096)
    file = memory.create_file("f", 200)

    for op, start, npages in ops:
        if op == "map":
            overlap = any(v in model for v in range(start, start + npages))
            vma = Vma(start=start, npages=npages, file=file, file_page=start)
            if overlap:
                with pytest.raises(MapError):
                    asp.add_mapping(vma)
            else:
                asp.add_mapping(vma)
                for i in range(npages):
                    model[start + i] = start + i
        elif op == "unmap":
            removed = asp.remove_mapping(start, npages)
            expected = sum(
                1 for v in range(start, start + npages) if model.pop(v, None) is not None
            )
            assert removed == expected
        else:
            vma = Vma(start=start, npages=npages, file=file, file_page=0)
            asp.replace_mapping(vma)
            for v in range(start, start + npages):
                model[v] = v - start

    for vpn in range(0, 80):
        if vpn in model:
            assert asp.translate(vpn) == (file, model[vpn])
        else:
            assert not asp.is_mapped(vpn)

    # VMAs are sorted, non-overlapping, and non-adjacent-compatible
    vmas = list(asp.vmas())
    for first, second in zip(vmas, vmas[1:]):
        assert first.end <= second.start
        assert not first.can_merge_with(second)

"""Unit tests for the syscall-style mapping interface."""

import numpy as np
import pytest

from repro.vm.errors import MapError
from repro.vm.constants import VALUES_PER_PAGE


@pytest.fixture
def file(memory):
    f = memory.create_file("f", 64)
    f.data[:] = np.arange(64)[:, None]
    return f


class TestMmap:
    def test_anonymous_reservation(self, mapper):
        base = mapper.mmap(100)
        assert mapper.address_space.is_mapped(base)
        assert mapper.address_space.is_mapped(base + 99)
        assert mapper.translate(base) is None

    def test_anonymous_is_cheap(self, mapper):
        """A reservation charges only the syscall base, no per-page cost."""
        before = mapper.cost.ledger.lane_ns()
        mapper.mmap(10_000)
        charged = mapper.cost.ledger.lane_ns() - before
        assert charged == pytest.approx(mapper.cost.params.mmap_syscall_ns)

    def test_file_backed_mapping(self, mapper, file):
        base = mapper.mmap(4, file=file, file_page=8)
        assert mapper.translate(base + 1) == (file, 9)

    def test_file_backed_charges_per_page(self, mapper, file):
        before = mapper.cost.ledger.lane_ns()
        mapper.mmap(4, file=file, file_page=0)
        charged = mapper.cost.ledger.lane_ns() - before
        params = mapper.cost.params
        assert charged == pytest.approx(
            params.mmap_syscall_ns + 4 * params.mmap_per_page_ns
        )

    def test_zero_pages_rejected(self, mapper):
        with pytest.raises(MapError):
            mapper.mmap(0)

    def test_fixed_requires_address(self, mapper):
        with pytest.raises(MapError):
            mapper.mmap(1, fixed=True)

    def test_file_range_validated(self, mapper, file):
        with pytest.raises(MapError):
            mapper.mmap(8, file=file, file_page=60)
        with pytest.raises(MapError):
            mapper.mmap(1, file=file, file_page=-1)

    def test_fixed_replaces_existing(self, mapper, file):
        base = mapper.mmap(8)
        mapper.mmap(2, addr=base + 3, fixed=True, file=file, file_page=20)
        assert mapper.translate(base + 3) == (file, 20)
        assert mapper.translate(base + 2) is None


class TestRemapFixed:
    def test_rewiring(self, mapper, file):
        base = mapper.mmap(4)
        mapper.remap_fixed(base, 2, file, 10)
        assert mapper.translate(base) == (file, 10)
        mapper.remap_fixed(base, 2, file, 30)
        assert mapper.translate(base + 1) == (file, 31)

    def test_counters(self, mapper, file):
        base = mapper.mmap(4)
        mapper.remap_fixed(base, 3, file, 0)
        assert mapper.cost.ledger.counter("pages_mapped") == 3
        assert mapper.cost.ledger.counter("mmap_calls") == 2  # reserve + remap


class TestMunmap:
    def test_munmap_removes_and_charges(self, mapper, file):
        base = mapper.mmap(4, file=file, file_page=0)
        removed = mapper.munmap(base, 4)
        assert removed == 4
        assert not mapper.address_space.is_mapped(base)
        assert mapper.cost.ledger.counter("pages_unmapped") == 4


class TestAccess:
    def test_first_access_faults_once(self, mapper, file):
        base = mapper.mmap(2, file=file, file_page=0)
        mapper.access(base)
        mapper.access(base)
        assert mapper.cost.ledger.counter("soft_faults") == 1

    def test_access_returns_backing(self, mapper, file):
        base = mapper.mmap(2, file=file, file_page=5)
        assert mapper.access(base + 1) == (file, 6)

    def test_read_page_values_file(self, mapper, file):
        base = mapper.mmap(1, file=file, file_page=7)
        values = mapper.read_page_values(base)
        assert int(values[0]) == 7

    def test_read_page_values_anonymous_is_zero(self, mapper):
        base = mapper.mmap(1)
        values = mapper.read_page_values(base)
        assert values.shape == (VALUES_PER_PAGE,)
        assert not values.any()

"""Unit tests for the cost model (parameters, ledger, lanes, regions)."""

import pytest

from repro.vm.cost import (
    MAIN_LANE,
    MAPPER_LANE,
    CostLedger,
    CostModel,
    CostParameters,
)


class TestCostParameters:
    def test_defaults_are_positive(self):
        params = CostParameters()
        assert params.seq_value_read_ns > 0
        assert params.mmap_syscall_ns > params.mmap_per_page_ns

    def test_full_scan_calibration(self):
        """A 1M-page full scan must land near the paper's ~234 ms."""
        params = CostParameters()
        scan_ns = 1_000_000 * params.page_scan_ns(511)
        assert 150e6 <= scan_ns <= 350e6

    def test_page_scan_kind_ordering(self):
        params = CostParameters()
        seq = params.page_scan_ns(511, "seq")
        prefetched = params.page_scan_ns(511, "prefetched")
        random = params.page_scan_ns(511, "random")
        assert seq < prefetched < random

    def test_read_factor_unknown_kind(self):
        with pytest.raises(ValueError):
            CostParameters().read_factor("warp")

    def test_read_factor_seq_is_unity(self):
        assert CostParameters().read_factor("seq") == 1.0


class TestCostLedger:
    def test_charges_accumulate_per_lane(self):
        ledger = CostLedger()
        ledger.charge(10.0)
        ledger.charge(5.0, MAPPER_LANE)
        ledger.charge(2.5)
        assert ledger.lane_ns(MAIN_LANE) == pytest.approx(12.5)
        assert ledger.lane_ns(MAPPER_LANE) == pytest.approx(5.0)

    def test_unknown_lane_reads_zero(self):
        assert CostLedger().lane_ns("ghost") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(-1.0)

    def test_counters(self):
        ledger = CostLedger()
        ledger.count("x")
        ledger.count("x", 4)
        assert ledger.counter("x") == 5
        assert ledger.counter("missing") == 0
        assert ledger.counters() == {"x": 5}


class TestRegions:
    def test_region_captures_lane_deltas(self):
        cost = CostModel()
        cost.ledger.charge(100.0)
        with cost.region() as region:
            cost.ledger.charge(40.0)
            cost.ledger.charge(70.0, MAPPER_LANE)
        assert region.lane_ns(MAIN_LANE) == pytest.approx(40.0)
        assert region.lane_ns(MAPPER_LANE) == pytest.approx(70.0)

    def test_region_overlap_vs_serial(self):
        cost = CostModel()
        with cost.region() as region:
            cost.ledger.charge(40.0)
            cost.ledger.charge(70.0, MAPPER_LANE)
        assert region.elapsed_ns(overlap=True) == pytest.approx(70.0)
        assert region.elapsed_ns(overlap=False) == pytest.approx(110.0)

    def test_empty_region(self):
        cost = CostModel()
        with cost.region() as region:
            pass
        assert region.elapsed_ns() == 0.0

    def test_region_counter_deltas(self):
        cost = CostModel()
        cost.mmap_call(4)
        with cost.region() as region:
            cost.mmap_call(2)
            cost.mmap_call(3)
        assert region.counter_deltas["mmap_calls"] == 2
        assert region.counter_deltas["pages_mapped"] == 5

    def test_nested_regions(self):
        cost = CostModel()
        with cost.region() as outer:
            cost.ledger.charge(10.0)
            with cost.region() as inner:
                cost.ledger.charge(5.0)
        assert inner.lane_ns() == pytest.approx(5.0)
        assert outer.lane_ns() == pytest.approx(15.0)


class TestChargeHelpers:
    def test_sequential_values(self):
        cost = CostModel()
        cost.sequential_values(100)
        expected = 100 * cost.params.seq_value_read_ns
        assert cost.ledger.lane_ns() == pytest.approx(expected)
        assert cost.ledger.counter("values_scanned") == 100

    def test_stream_values_uses_factor(self):
        cost = CostModel()
        cost.stream_values(100, "random")
        expected = (
            100 * cost.params.seq_value_read_ns * cost.params.random_read_factor
        )
        assert cost.ledger.lane_ns() == pytest.approx(expected)

    def test_page_access_kinds(self):
        cost = CostModel()
        cost.page_access("seq", 2)
        cost.page_access("random", 1)
        expected = (
            2 * cost.params.seq_page_access_ns + cost.params.random_page_access_ns
        )
        assert cost.ledger.lane_ns() == pytest.approx(expected)
        assert cost.ledger.counter("pages_accessed") == 3

    def test_page_access_unknown_kind(self):
        with pytest.raises(ValueError):
            CostModel().page_access("teleport")

    def test_full_page_scan_composition(self):
        cost = CostModel()
        cost.full_page_scan(511, 3, kind="seq")
        p = cost.params
        expected = 3 * (
            p.seq_page_access_ns + p.page_header_read_ns + 511 * p.seq_value_read_ns
        )
        assert cost.ledger.lane_ns() == pytest.approx(expected)
        assert cost.ledger.counter("pages_scanned") == 3

    def test_mmap_and_munmap(self):
        cost = CostModel()
        cost.mmap_call(10)
        cost.munmap_call(10)
        p = cost.params
        expected = (
            p.mmap_syscall_ns
            + 10 * p.mmap_per_page_ns
            + p.munmap_syscall_ns
            + 10 * p.mmap_per_page_ns
        )
        assert cost.ledger.lane_ns() == pytest.approx(expected)
        assert cost.ledger.counter("mmap_calls") == 1
        assert cost.ledger.counter("pages_unmapped") == 10

    def test_bitvector_scan_rounds_to_words(self):
        cost = CostModel()
        cost.bitvector_scan(65)  # 2 words
        assert cost.ledger.counter("bitvector_words_scanned") == 2

    def test_maps_parse(self):
        cost = CostModel()
        cost.maps_parse(100)
        expected = (
            cost.params.maps_file_open_ns + 100 * cost.params.maps_line_parse_ns
        )
        assert cost.ledger.lane_ns() == pytest.approx(expected)

    def test_misc_helpers_count(self):
        cost = CostModel()
        cost.soft_fault(3)
        cost.value_write(2)
        cost.bimap_op(4)
        cost.queue_op(5)
        cost.update_check(6)
        counters = cost.ledger.counters()
        assert counters["soft_faults"] == 3
        assert counters["values_written"] == 2
        assert counters["bimap_ops"] == 4
        assert counters["queue_ops"] == 5
        assert counters["updates_checked"] == 6

"""Geometry sanity checks and small cross-cutting vm tests."""

import threading

import pytest

from repro.vm.constants import (
    MAX_VALUE,
    MIN_VALUE,
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
    VALUE_WIDTH,
    VALUES_PER_PAGE,
)
from repro.vm.cost import CostLedger


class TestConstants:
    def test_page_geometry(self):
        """The paper's layout: 4 KiB pages, 8 B pageID, 8 B values."""
        assert PAGE_SIZE == 4096
        assert PAGE_HEADER_BYTES == 8
        assert VALUE_WIDTH == 8
        assert VALUES_PER_PAGE == (PAGE_SIZE - PAGE_HEADER_BYTES) // VALUE_WIDTH
        assert VALUES_PER_PAGE == 511

    def test_value_domain(self):
        assert MAX_VALUE == 2**63 - 1
        assert MIN_VALUE == -(2**63)

    def test_header_plus_values_fit_one_page(self):
        assert PAGE_HEADER_BYTES + VALUES_PER_PAGE * VALUE_WIDTH <= PAGE_SIZE


class TestLedgerConcurrency:
    def test_concurrent_charges_are_not_lost(self):
        """The ledger is hammered by the background mapping thread;
        charges and counters must never race away."""
        ledger = CostLedger()
        per_thread = 2_000
        threads = 8

        def worker():
            for _ in range(per_thread):
                ledger.charge(1.0, "main")
                ledger.charge(2.0, "mapper")
                ledger.count("ops")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert ledger.lane_ns("main") == pytest.approx(per_thread * threads)
        assert ledger.lane_ns("mapper") == pytest.approx(2.0 * per_thread * threads)
        assert ledger.counter("ops") == per_thread * threads


class TestMmapPopulate:
    def test_populate_faults_upfront(self, mapper, memory):
        file = memory.create_file("f", 8)
        base = mapper.mmap(4, file=file, file_page=0, populate=True)
        assert mapper.cost.ledger.counter("soft_faults") == 4
        # subsequent accesses are free
        mapper.access(base)
        mapper.access(base + 3)
        assert mapper.cost.ledger.counter("soft_faults") == 4

    def test_populate_anonymous_reservation(self, mapper):
        base = mapper.mmap(3, populate=True)
        assert mapper.cost.ledger.counter("soft_faults") == 3
        assert mapper.translate(base) is None

    def test_remap_populate_resets_then_prefaults(self, mapper, memory):
        file = memory.create_file("f", 8)
        base = mapper.mmap(2, file=file, file_page=0, populate=True)
        mapper.remap_fixed(base, 2, file, 4, populate=True)
        # 2 faults for the first map + 2 for the remap
        assert mapper.cost.ledger.counter("soft_faults") == 4
        mapper.access(base)
        assert mapper.cost.ledger.counter("soft_faults") == 4


class TestProcmapsPrefix:
    def test_custom_shm_prefix(self, mapper, memory):
        from repro.vm.procmaps import render_maps

        file = memory.create_file("db", 4)
        mapper.mmap(2, file=file, file_page=0)
        text = render_maps(mapper.address_space, shm_prefix="/mnt/ram/")
        assert "/mnt/ram/db" in text

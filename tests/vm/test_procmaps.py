"""Unit tests for /proc/PID/maps rendering, parsing and snapshots."""

import pytest

from repro import fastpath
from repro.vm.cost import CostModel
from repro.vm.errors import ProcMapsError
from repro.vm.mmap_api import MemoryMapper
from repro.vm.procmaps import (
    MappingSnapshot,
    parse_maps,
    render_maps,
    snapshot_address_space,
)


@pytest.fixture
def file(memory):
    return memory.create_file("db", 64)


class TestRenderAndParse:
    def test_roundtrip(self, mapper, file):
        base = mapper.mmap(4, file=file, file_page=8)
        mapper.mmap(2)  # anonymous
        text = render_maps(mapper.address_space)
        entries = parse_maps(text)
        assert len(entries) == 2
        backed = next(e for e in entries if not e.anonymous)
        assert backed.start_vpn == base
        assert backed.npages == 4
        assert backed.file_page == 8
        assert backed.pathname == "/dev/shm/db"
        assert backed.inode == file.inode

    def test_kernel_format_fields(self, mapper, file):
        mapper.mmap(1, file=file, file_page=3)
        line = render_maps(mapper.address_space).splitlines()[0]
        addr, perms, offset, dev, inode, path = line.split()
        assert "-" in addr
        assert perms == "rw-s"
        assert int(offset, 16) == 3 * 4096
        assert dev == "03:0c"
        assert path.startswith("/dev/shm/")

    def test_parse_real_proc_line(self):
        text = (
            "7f2c3a000000-7f2c3a021000 rw-s 00002000 08:01 131072 "
            "/dev/shm/example\n"
            "7f2c3b000000-7f2c3b001000 r-xp 00000000 08:01 999 "
            "/usr/lib/x86_64-linux-gnu/libc.so.6\n"
        )
        entries = parse_maps(text)
        assert entries[0].npages == 0x21
        assert entries[0].file_page == 2
        assert entries[1].perms == "r-xp"

    def test_parse_own_process_maps(self):
        """The parser handles the real kernel file of this process."""
        with open("/proc/self/maps") as f:
            entries = parse_maps(f.read())
        assert len(entries) > 10
        assert all(e.npages > 0 for e in entries)

    def test_parse_garbage_rejected(self):
        with pytest.raises(ProcMapsError):
            parse_maps("this is not a maps line\n")

    def test_parse_unaligned_rejected(self):
        with pytest.raises(ProcMapsError):
            parse_maps("00000001-00001000 rw-s 00000000 03:0c 1 /dev/shm/x\n")

    def test_parse_inverted_rejected(self):
        with pytest.raises(ProcMapsError):
            parse_maps("00002000-00001000 rw-s 00000000 03:0c 1 /dev/shm/x\n")

    def test_parse_charges_per_line(self, mapper, file):
        mapper.mmap(1, file=file)
        mapper.mmap(1, file=file, file_page=10)
        text = render_maps(mapper.address_space)
        cost = CostModel()
        parse_maps(text, cost=cost)
        params = cost.params
        lines = len(text.splitlines())
        assert cost.ledger.lane_ns() == pytest.approx(
            params.maps_file_open_ns + lines * params.maps_line_parse_ns
        )

    def test_empty_address_space(self):
        from repro.vm.address_space import AddressSpace

        assert render_maps(AddressSpace()) == ""
        assert parse_maps("") == []

    def test_vma_merging_shrinks_the_file(self, memory, file):
        """Consecutive rewired pages merge into one line — the effect
        behind Figure 7's cheaper parse on clustered data."""
        mapper = MemoryMapper(memory)
        base = mapper.mmap(8)
        for i in range(8):
            mapper.remap_fixed(base + i, 1, file, 16 + i)
        scattered = MemoryMapper(memory)
        sbase = scattered.mmap(8)
        for i in range(8):
            scattered.remap_fixed(sbase + i, 1, file, 2 * i)
        merged_lines = len(render_maps(mapper.address_space).splitlines())
        scattered_lines = len(render_maps(scattered.address_space).splitlines())
        assert merged_lines == 1
        assert scattered_lines == 8


class TestMappingSnapshot:
    def test_build_from_entries(self, mapper, file):
        base = mapper.mmap(4, file=file, file_page=8)
        snapshot = snapshot_address_space(mapper.address_space)
        assert snapshot.physical_of(base + 2) == ("/dev/shm/db", 10)
        assert base + 2 in snapshot.virtuals_of(("/dev/shm/db", 10))

    def test_anonymous_entries_skipped(self, mapper, file):
        mapper.mmap(4)
        mapper.mmap(2, file=file, file_page=0)
        snapshot = snapshot_address_space(mapper.address_space)
        assert len(snapshot) == 2

    def test_file_filter(self, mapper, memory, file):
        other = memory.create_file("other", 8)
        mapper.mmap(2, file=file, file_page=0)
        mapper.mmap(2, file=other, file_page=0)
        snapshot = snapshot_address_space(
            mapper.address_space, file_filter="/dev/shm/db"
        )
        assert len(snapshot) == 2
        assert all(path == "/dev/shm/db" for path, _ in [snapshot.physical_of(v) for v in list(range(0x10000, 0x10100)) if snapshot.physical_of(v)])

    def test_shared_physical_pages(self):
        snapshot = MappingSnapshot()
        snapshot.map(100, ("f", 7))
        snapshot.map(200, ("f", 7))
        assert snapshot.virtuals_of(("f", 7)) == frozenset({100, 200})

    def test_remap_updates_reverse_side(self):
        snapshot = MappingSnapshot()
        snapshot.map(100, ("f", 7))
        snapshot.map(100, ("f", 9))
        assert snapshot.physical_of(100) == ("f", 9)
        assert snapshot.virtuals_of(("f", 7)) == frozenset()

    def test_unmap(self):
        snapshot = MappingSnapshot()
        snapshot.map(100, ("f", 7))
        snapshot.unmap(100)
        assert snapshot.physical_of(100) is None
        assert len(snapshot) == 0
        snapshot.unmap(100)  # idempotent

    def test_snapshot_charges_bimap_ops(self, mapper, file):
        mapper.mmap(4, file=file, file_page=0)
        cost = CostModel()
        snapshot_address_space(mapper.address_space, cost=cost)
        assert cost.ledger.counter("bimap_ops") >= 4
        assert cost.ledger.counter("maps_lines_parsed") == 1


class TestMapsCache:
    def _parse_costs(self, mapper, **kwargs):
        cost = CostModel()
        snapshot_address_space(mapper.address_space, cost=cost, **kwargs)
        return cost.ledger.snapshot()

    def test_render_cached_until_mapping_changes(self, mapper, file):
        with fastpath.fast_paths():
            mapper.mmap(4, file=file, file_page=0)
            first = render_maps(mapper.address_space)
            assert render_maps(mapper.address_space) is first  # cache hit
            mapper.mmap(2)  # bump the generation
            second = render_maps(mapper.address_space)
            assert second is not first
            assert len(second.splitlines()) == len(first.splitlines()) + 1

    def test_cache_hit_charges_the_same_simulated_cost(self, mapper, file):
        with fastpath.fast_paths():
            mapper.mmap(4, file=file, file_page=0)
            mapper.mmap(3, file=file, file_page=8)
            miss = self._parse_costs(mapper)
            hit = self._parse_costs(mapper)
        with fastpath.reference_paths():
            reference = self._parse_costs(mapper)
        assert hit == miss == reference

    def test_snapshots_agree_across_backends(self, mapper, file):
        mapper.mmap(4, file=file, file_page=0)
        mapper.mmap(2)  # anonymous
        mapper.mmap(3, file=file, file_page=10)
        aspace = mapper.address_space
        with fastpath.reference_paths():
            reference = snapshot_address_space(aspace)
        with fastpath.fast_paths():
            fast = snapshot_address_space(aspace)
        assert len(fast) == len(reference)
        for vpn in range(0x10000, 0x10000 + 16):
            assert fast.physical_of(vpn) == reference.physical_of(vpn)
        for fpage in range(12):
            phys = ("/dev/shm/db", fpage)
            assert fast.virtuals_of(phys) == reference.virtuals_of(phys)
            assert fast.any_virtual_in_range(
                phys, 0x10000, 0x10004
            ) == reference.any_virtual_in_range(phys, 0x10000, 0x10004)

    def test_array_snapshot_mutations_match_reference(self, mapper, file):
        mapper.mmap(6, file=file, file_page=0)
        aspace = mapper.address_space
        with fastpath.reference_paths():
            reference = snapshot_address_space(aspace)
        with fastpath.fast_paths():
            fast = snapshot_address_space(aspace)
        base = 0x10000
        for snapshot in (reference, fast):
            snapshot.unmap(base + 2)
            snapshot.unmap(base + 2)  # idempotent
            snapshot.map(base + 40, ("/dev/shm/db", 2))
            snapshot.map(base + 1, ("/dev/shm/db", 5))  # remap over base
        assert len(fast) == len(reference)
        for vpn in [base + i for i in range(8)] + [base + 40]:
            assert fast.physical_of(vpn) == reference.physical_of(vpn)
        for fpage in range(7):
            phys = ("/dev/shm/db", fpage)
            assert fast.virtuals_of(phys) == reference.virtuals_of(phys)
            assert fast.any_virtual_in_range(
                phys, base, base + 3
            ) == reference.any_virtual_in_range(phys, base, base + 3)

"""Property test: /proc maps rendering and parsing are lossless.

After any sequence of mapping operations, rendering the address space
and parsing the text back must reproduce the exact page-level mapping —
the property the paper's update algorithm depends on (Section 2.5).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.mmap_api import MemoryMapper
from repro.vm.physical import PhysicalMemory
from repro.vm.procmaps import MappingSnapshot, parse_maps, render_maps

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["map_file", "map_anon", "remap", "unmap", "protect"]),
        st.integers(0, 48),
        st.integers(1, 8),
        st.integers(0, 56),
    ),
    max_size=30,
)


@settings(max_examples=120, deadline=None)
@given(ops=_OPS)
def test_maps_roundtrip_is_page_accurate(ops):
    memory = PhysicalMemory(capacity_bytes=64 * 1024 * 1024)
    mapper = MemoryMapper(memory)
    file = memory.create_file("db", 64)

    for op, start, npages, fpage in ops:
        fpage = min(fpage, file.num_pages - npages)
        try:
            if op == "map_file":
                mapper.mmap(
                    npages, addr=start, fixed=True, file=file, file_page=fpage
                )
            elif op == "map_anon":
                mapper.mmap(npages, addr=start, fixed=True)
            elif op == "remap":
                mapper.remap_fixed(start, npages, file, fpage)
            elif op == "unmap":
                mapper.munmap(start, npages)
            else:
                mapper.mprotect(start, npages, "r")
        except Exception:
            continue  # invalid op against current state: fine

    asp = mapper.address_space

    # 1. the rendered file parses back to the same page count per kind
    entries = parse_maps(render_maps(asp))
    rendered_pages = sum(e.npages for e in entries)
    mapped_pages = sum(vma.npages for vma in asp.vmas())
    assert rendered_pages == mapped_pages
    assert len(entries) == asp.num_vmas

    # 2. the page-wise snapshot equals the true translations
    snapshot = MappingSnapshot(entries)
    for vma in asp.vmas():
        for vpn in range(vma.start, vma.end):
            truth = asp.translate(vpn)
            parsed = snapshot.physical_of(vpn)
            if truth is None:
                assert parsed is None
            else:
                assert parsed == ("/dev/shm/db", truth[1])

    # 3. reverse direction: every snapshot entry is a true mapping
    for vpn, (path, fpage) in list(snapshot._forward.items()):
        assert asp.translate(vpn) == (file, fpage)

"""Unit and property tests for virtual memory areas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.cost import CostModel
from repro.vm.physical import PhysicalMemory
from repro.vm.vma import Vma


@pytest.fixture
def file():
    memory = PhysicalMemory(capacity_bytes=64 * 1024 * 1024, cost=CostModel())
    return memory.create_file("f", 64)


class TestVmaBasics:
    def test_geometry(self, file):
        vma = Vma(start=10, npages=4, file=file, file_page=2)
        assert vma.end == 14
        assert not vma.anonymous
        assert vma.contains(13)
        assert not vma.contains(14)

    def test_anonymous(self):
        vma = Vma(start=0, npages=2)
        assert vma.anonymous
        assert vma.translate(1) is None

    def test_validation(self, file):
        with pytest.raises(ValueError):
            Vma(start=0, npages=0)
        with pytest.raises(ValueError):
            Vma(start=-1, npages=1)

    def test_translate(self, file):
        vma = Vma(start=10, npages=4, file=file, file_page=20)
        assert vma.translate(12) == (file, 22)
        with pytest.raises(ValueError):
            vma.translate(14)

    def test_overlaps(self):
        vma = Vma(start=10, npages=4)
        assert vma.overlaps(13, 1)
        assert vma.overlaps(8, 3)
        assert not vma.overlaps(14, 2)
        assert not vma.overlaps(6, 4)


class TestVmaMerge:
    def test_merge_file_backed_contiguous(self, file):
        a = Vma(start=0, npages=2, file=file, file_page=10)
        b = Vma(start=2, npages=3, file=file, file_page=12)
        assert a.can_merge_with(b)
        merged = a.merged_with(b)
        assert merged.npages == 5
        assert merged.translate(4) == (file, 14)

    def test_no_merge_with_file_gap(self, file):
        a = Vma(start=0, npages=2, file=file, file_page=10)
        b = Vma(start=2, npages=3, file=file, file_page=13)
        assert not a.can_merge_with(b)

    def test_no_merge_with_virtual_gap(self, file):
        a = Vma(start=0, npages=2, file=file, file_page=10)
        b = Vma(start=3, npages=1, file=file, file_page=12)
        assert not a.can_merge_with(b)

    def test_no_merge_across_flags(self, file):
        a = Vma(start=0, npages=2, file=file, file_page=0, shared=True)
        b = Vma(start=2, npages=2, file=file, file_page=2, shared=False)
        assert not a.can_merge_with(b)

    def test_no_merge_across_files(self, file):
        other = file._memory.create_file("g", 8)
        a = Vma(start=0, npages=2, file=file, file_page=0)
        b = Vma(start=2, npages=2, file=other, file_page=2)
        assert not a.can_merge_with(b)

    def test_anonymous_merge(self):
        a = Vma(start=0, npages=2)
        b = Vma(start=2, npages=2)
        assert a.can_merge_with(b)
        assert a.merged_with(b).npages == 4

    def test_merge_rejects_incompatible(self, file):
        a = Vma(start=0, npages=2, file=file, file_page=0)
        b = Vma(start=5, npages=2, file=file, file_page=2)
        with pytest.raises(ValueError):
            a.merged_with(b)


class TestVmaSplit:
    def test_split_file_backed(self, file):
        vma = Vma(start=10, npages=6, file=file, file_page=20)
        head, tail = vma.split_at(12)
        assert (head.start, head.npages, head.file_page) == (10, 2, 20)
        assert (tail.start, tail.npages, tail.file_page) == (12, 4, 22)

    def test_split_anonymous(self):
        head, tail = Vma(start=0, npages=4).split_at(1)
        assert head.npages == 1 and tail.npages == 3
        assert tail.file_page == 0

    def test_split_bounds(self):
        vma = Vma(start=10, npages=4)
        for bad in (10, 14, 9, 15):
            with pytest.raises(ValueError):
                vma.split_at(bad)


@settings(max_examples=150, deadline=None)
@given(
    start=st.integers(0, 100),
    npages=st.integers(2, 50),
    file_page=st.integers(0, 100),
    cut=st.data(),
)
def test_split_then_merge_roundtrip(start, npages, file_page, cut):
    """Splitting any VMA and merging the halves reproduces the original."""
    vma = Vma(start=start, npages=npages, file=None, file_page=0)
    point = cut.draw(st.integers(start + 1, start + npages - 1))
    head, tail = vma.split_at(point)
    assert head.can_merge_with(tail)
    merged = head.merged_with(tail)
    assert merged == vma

    # translations of a file-backed VMA survive split at every page
    memory = PhysicalMemory(capacity_bytes=512 * 4096 + 4096)
    file = memory.create_file("f", min(file_page + npages, 512) or 1)
    if file_page + npages <= file.num_pages:
        fvma = Vma(start=start, npages=npages, file=file, file_page=file_page)
        fhead, ftail = fvma.split_at(point)
        for vpn in range(start, start + npages):
            part = fhead if fhead.contains(vpn) else ftail
            assert part.translate(vpn) == fvma.translate(vpn)

"""Unit and property tests for mprotect and permission enforcement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.errors import BadAddressError, MapError, ProtectionError
from repro.vm.mmap_api import MemoryMapper
from repro.vm.physical import PhysicalMemory
from repro.vm.procmaps import parse_maps, render_maps


@pytest.fixture
def file(memory):
    return memory.create_file("f", 64)


class TestMprotect:
    def test_read_only_blocks_writes(self, mapper, file):
        base = mapper.mmap(4, file=file, file_page=0)
        mapper.mprotect(base, 4, "r")
        assert mapper.access(base) is not None  # reads fine
        with pytest.raises(ProtectionError):
            mapper.access(base, write=True)

    def test_none_blocks_everything(self, mapper, file):
        base = mapper.mmap(2, file=file, file_page=0)
        mapper.mprotect(base, 2, "")
        with pytest.raises(ProtectionError):
            mapper.access(base)

    def test_restore_permissions(self, mapper, file):
        base = mapper.mmap(2, file=file, file_page=0)
        mapper.mprotect(base, 2, "r")
        mapper.mprotect(base, 2, "rw")
        assert mapper.access(base, write=True) == (file, 0)

    def test_partial_range_splits_vma(self, mapper, file):
        base = mapper.mmap(8, file=file, file_page=0)
        before = mapper.address_space.num_vmas
        mapper.mprotect(base + 2, 3, "r")
        assert mapper.address_space.num_vmas == before + 2
        # translations unaffected on all pieces
        for i in range(8):
            assert mapper.translate(base + i) == (file, i)
        with pytest.raises(ProtectionError):
            mapper.access(base + 3, write=True)
        assert mapper.access(base + 1, write=True) == (file, 1)

    def test_reprotect_merges_back(self, mapper, file):
        base = mapper.mmap(8, file=file, file_page=0)
        mapper.mprotect(base + 2, 3, "r")
        mapper.mprotect(base + 2, 3, "rw")
        assert mapper.address_space.num_vmas == 1

    def test_resident_pages_stay_resident(self, mapper, file):
        base = mapper.mmap(2, file=file, file_page=0)
        mapper.access(base)
        faults_before = mapper.cost.ledger.counter("soft_faults")
        mapper.mprotect(base, 2, "r")
        mapper.access(base)
        assert mapper.cost.ledger.counter("soft_faults") == faults_before

    def test_unmapped_range_rejected(self, mapper):
        with pytest.raises(BadAddressError):
            mapper.mprotect(0x500, 2, "r")

    def test_hole_rejected(self, mapper, file):
        a = mapper.mmap(2, addr=100, fixed=True, file=file, file_page=0)
        mapper.mmap(2, addr=104, fixed=True, file=file, file_page=2)
        with pytest.raises(BadAddressError):
            mapper.mprotect(100, 6, "r")

    def test_bad_perms_rejected(self, mapper, file):
        base = mapper.mmap(1, file=file, file_page=0)
        with pytest.raises(MapError):
            mapper.mprotect(base, 1, "rq")
        with pytest.raises(MapError):
            mapper.mprotect(base, 0, "r")

    def test_charges_syscall(self, mapper, file):
        base = mapper.mmap(1, file=file, file_page=0)
        mapper.mprotect(base, 1, "r")
        assert mapper.cost.ledger.counter("mprotect_calls") == 1

    def test_rendered_in_maps(self, mapper, file):
        base = mapper.mmap(4, file=file, file_page=0)
        mapper.mprotect(base, 2, "r")
        text = render_maps(mapper.address_space)
        perms = [line.split()[1] for line in text.splitlines()]
        assert "r--s" in perms
        assert "rw-s" in perms


@settings(max_examples=100, deadline=None)
@given(
    start=st.integers(0, 28),
    npages=st.integers(1, 16),
    perms=st.sampled_from(["r", "rw", "rx", ""]),
)
def test_mprotect_preserves_translations(start, npages, perms):
    """Any in-range mprotect keeps every page's translation intact and
    the maps file parseable."""
    memory = PhysicalMemory(capacity_bytes=64 * 1024 * 1024)
    mapper = MemoryMapper(memory)
    file = memory.create_file("f", 64)
    base = mapper.mmap(44, file=file, file_page=0)
    if start + npages > 44:
        npages = 44 - start
    if npages < 1:
        npages = 1
    mapper.mprotect(base + start, npages, perms)
    for i in range(44):
        assert mapper.translate(base + i) == (file, i)
    entries = parse_maps(render_maps(mapper.address_space))
    assert sum(e.npages for e in entries) == 44

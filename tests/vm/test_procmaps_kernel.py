"""parse_maps against genuine kernel ``/proc/self/maps`` output.

The other procmaps tests exercise the text the *simulator* renders; the
native substrate feeds :func:`~repro.vm.procmaps.parse_maps` the
kernel's own output instead.  These tests pin the parser to that format
twice over: against a committed capture from a real Linux process (with
memfd-backed mappings, a pathname containing spaces, anonymous
mappings and the ``[heap]``/``[stack]``/``[vdso]`` pseudo-paths), and —
on Linux — against a live read of this very process.
"""

import os
import sys
from pathlib import Path

import pytest

from repro.vm.constants import PAGE_SIZE
from repro.vm.cost import CostModel
from repro.vm.procmaps import parse_maps

FIXTURE = Path(__file__).parent / "fixtures" / "proc_self_maps.txt"


@pytest.fixture(scope="module")
def capture() -> str:
    return FIXTURE.read_text()


@pytest.fixture(scope="module")
def entries(capture):
    return parse_maps(capture)


class TestKernelCapture:
    def test_every_line_parses(self, capture, entries):
        assert len(entries) == len(capture.splitlines())

    def test_pseudo_paths(self, entries):
        paths = {e.pathname for e in entries}
        assert "[heap]" in paths
        assert "[stack]" in paths
        assert "[vdso]" in paths
        assert "[vsyscall]" in paths

    def test_memfd_pathname_with_spaces(self, entries):
        """memfd pathnames keep their spaces and '(deleted)' suffix —
        the native substrate matches stores to maps lines by this."""
        matches = [e for e in entries if "t.col with space" in e.pathname]
        assert len(matches) == 1
        entry = matches[0]
        assert entry.pathname == "/memfd:t.col with space (deleted)"
        assert entry.npages == 4
        assert entry.perms == "rw-s"
        assert entry.file_page == 0
        assert not entry.anonymous

    def test_anonymous_mappings(self, entries):
        anonymous = [e for e in entries if e.anonymous]
        assert anonymous
        assert all(e.pathname == "" for e in anonymous)
        assert all(e.inode == 0 for e in anonymous)

    def test_entries_sorted_and_disjoint(self, entries):
        for prev, cur in zip(entries, entries[1:]):
            assert prev.end_vpn <= cur.start_vpn

    def test_file_offsets_are_page_units(self, entries):
        """Kernel offsets are hex bytes; parse_maps exposes file pages."""
        offset_mapped = [e for e in entries if e.file_page > 0]
        assert offset_mapped  # the python binary maps several segments
        python_segments = [
            e for e in entries if e.pathname.endswith("/python3.11")
        ]
        assert len(python_segments) > 1
        assert any(e.file_page > 0 for e in python_segments)

    def test_vsyscall_perms_parse(self, entries):
        vsyscall = next(e for e in entries if e.pathname == "[vsyscall]")
        assert vsyscall.perms == "--xp"

    def test_parse_cost_charged_per_line(self, capture):
        cost = CostModel()
        parse_maps(capture, cost=cost)
        assert cost.ledger.counter("maps_lines_parsed") == len(
            capture.splitlines()
        )


@pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="needs /proc/self/maps"
)
class TestLiveProcSelfMaps:
    def test_parses_this_process(self):
        with open("/proc/self/maps") as fh:
            text = fh.read()
        entries = parse_maps(text)
        assert len(entries) == len(text.splitlines())
        assert "[stack]" in {e.pathname for e in entries}
        assert any(e.anonymous for e in entries)

    def test_live_memfd_mapping_round_trips(self):
        if not hasattr(os, "memfd_create"):
            pytest.skip("no memfd_create on this kernel")
        import mmap as _mmap

        fd = os.memfd_create("live maps probe")
        try:
            os.ftruncate(fd, 3 * PAGE_SIZE)
            mm = _mmap.mmap(fd, 3 * PAGE_SIZE, _mmap.MAP_SHARED)
            try:
                path = os.readlink(f"/proc/self/fd/{fd}")
                with open("/proc/self/maps") as fh:
                    entries = parse_maps(fh.read())
                ours = [e for e in entries if e.pathname == path]
                assert len(ours) == 1
                assert ours[0].npages == 3
                assert ours[0].inode == os.fstat(fd).st_ino
            finally:
                mm.close()
        finally:
            os.close(fd)

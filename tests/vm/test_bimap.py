"""Unit and property tests for the bidirectional map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.bimap import BiMap
from repro.vm.errors import BimapError


class TestBiMapBasics:
    def test_insert_and_lookup_both_directions(self):
        bimap: BiMap[str, int] = BiMap()
        bimap.insert("a", 1)
        bimap.insert("b", 2)
        assert bimap.get_left("a") == 1
        assert bimap.get_right(2) == "b"
        assert len(bimap) == 2

    def test_missing_lookups_return_default(self):
        bimap: BiMap[str, int] = BiMap()
        assert bimap.get_left("x") is None
        assert bimap.get_right(9, default=-1) == -1

    def test_contains_and_has(self):
        bimap: BiMap[str, int] = BiMap()
        bimap.insert("a", 1)
        assert "a" in bimap
        assert bimap.has_left("a")
        assert bimap.has_right(1)
        assert not bimap.has_right(2)

    def test_duplicate_left_rejected(self):
        bimap: BiMap[str, int] = BiMap()
        bimap.insert("a", 1)
        with pytest.raises(BimapError):
            bimap.insert("a", 2)

    def test_duplicate_right_rejected(self):
        bimap: BiMap[str, int] = BiMap()
        bimap.insert("a", 1)
        with pytest.raises(BimapError):
            bimap.insert("b", 1)

    def test_overwrite_replaces_both_conflicts(self):
        bimap: BiMap[str, int] = BiMap()
        bimap.insert("a", 1)
        bimap.insert("b", 2)
        bimap.insert("a", 2, overwrite=True)
        assert bimap.get_left("a") == 2
        assert not bimap.has_left("b")
        assert not bimap.has_right(1)
        assert len(bimap) == 1

    def test_remove_left_and_right(self):
        bimap: BiMap[str, int] = BiMap()
        bimap.insert("a", 1)
        bimap.insert("b", 2)
        assert bimap.remove_left("a") == 1
        assert bimap.remove_right(2) == "b"
        assert len(bimap) == 0

    def test_remove_missing_raises(self):
        bimap: BiMap[str, int] = BiMap()
        with pytest.raises(BimapError):
            bimap.remove_left("nope")
        with pytest.raises(BimapError):
            bimap.remove_right(7)

    def test_iteration_and_clear(self):
        bimap: BiMap[str, int] = BiMap()
        bimap.insert("a", 1)
        bimap.insert("b", 2)
        assert dict(iter(bimap)) == {"a": 1, "b": 2}
        assert sorted(bimap.lefts()) == ["a", "b"]
        assert sorted(bimap.rights()) == [1, 2]
        bimap.clear()
        assert len(bimap) == 0


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove_left", "remove_right"]),
            st.integers(0, 15),
            st.integers(0, 15),
        ),
        max_size=60,
    )
)
def test_bimap_matches_model(ops):
    """The bimap must behave like a pair of mirrored dictionaries."""
    bimap: BiMap[int, int] = BiMap()
    model: dict[int, int] = {}

    for op, left, right in ops:
        if op == "insert":
            # mirror the overwrite semantics in the model
            bimap.insert(left, right, overwrite=True)
            stale_left = next((l for l, r in model.items() if r == right), None)
            if stale_left is not None:
                del model[stale_left]
            model[left] = right
        elif op == "remove_left":
            if left in model:
                assert bimap.remove_left(left) == model.pop(left)
            else:
                with pytest.raises(BimapError):
                    bimap.remove_left(left)
        else:
            inverse = {r: l for l, r in model.items()}
            if right in inverse:
                assert bimap.remove_right(right) == inverse[right]
                del model[inverse[right]]
            else:
                with pytest.raises(BimapError):
                    bimap.remove_right(right)

    assert len(bimap) == len(model)
    for left, right in model.items():
        assert bimap.get_left(left) == right
        assert bimap.get_right(right) == left
    # both directions stay consistent
    assert sorted(bimap.lefts()) == sorted(model.keys())
    assert sorted(bimap.rights()) == sorted(model.values())

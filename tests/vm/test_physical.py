"""Unit tests for physical memory and main-memory files."""

import numpy as np
import pytest

from repro.vm.constants import PAGE_SIZE, VALUES_PER_PAGE
from repro.vm.errors import FileError, OutOfMemoryError
from repro.vm.physical import PhysicalMemory


class TestPhysicalMemory:
    def test_capacity_accounting(self, memory):
        before = memory.free_pages
        memory.create_file("a", 10)
        assert memory.allocated_pages == 10
        assert memory.free_pages == before - 10

    def test_capacity_enforced(self):
        small = PhysicalMemory(capacity_bytes=PAGE_SIZE * 4)
        small.create_file("a", 3)
        with pytest.raises(OutOfMemoryError):
            small.create_file("b", 2)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(OutOfMemoryError):
            PhysicalMemory(capacity_bytes=PAGE_SIZE - 1)

    def test_duplicate_file_name_rejected(self, memory):
        memory.create_file("a", 1)
        with pytest.raises(FileError):
            memory.create_file("a", 1)

    def test_get_missing_file(self, memory):
        with pytest.raises(FileError):
            memory.get_file("ghost")

    def test_delete_releases_pages(self, memory):
        memory.create_file("a", 8)
        memory.delete_file("a")
        assert memory.allocated_pages == 0
        with pytest.raises(FileError):
            memory.get_file("a")

    def test_release_validation(self, memory):
        with pytest.raises(ValueError):
            memory.release_pages(1)
        with pytest.raises(ValueError):
            memory.reserve_pages(-1)

    def test_files_listing_and_inodes(self, memory):
        a = memory.create_file("a", 1)
        b = memory.create_file("b", 1)
        assert memory.files() == [a, b]
        assert a.inode != b.inode
        assert a.inode > 0


class TestMemoryFile:
    def test_geometry(self, memory):
        f = memory.create_file("f", 4)
        assert f.num_pages == 4
        assert f.size_bytes == 4 * PAGE_SIZE
        assert f.data.shape == (4, VALUES_PER_PAGE)

    def test_zero_pages_rejected(self, memory):
        with pytest.raises(FileError):
            memory.create_file("f", 0)

    def test_page_ids_default_to_identity(self, memory):
        f = memory.create_file("f", 5)
        assert [f.page_id(i) for i in range(5)] == list(range(5))

    def test_set_page_id(self, memory):
        f = memory.create_file("f", 2)
        f.set_page_id(1, 42)
        assert f.page_id(1) == 42

    def test_page_bounds_checked(self, memory):
        f = memory.create_file("f", 2)
        with pytest.raises(FileError):
            f.page_values(2)
        with pytest.raises(FileError):
            f.page_id(-1)

    def test_page_values_is_a_view(self, memory):
        f = memory.create_file("f", 2)
        f.page_values(0)[:] = 7
        assert int(f.data[0, 0]) == 7

    def test_resize_grow(self, memory):
        f = memory.create_file("f", 2)
        f.data[:] = 5
        f.resize(4)
        assert f.num_pages == 4
        assert memory.allocated_pages == 4
        assert int(f.data[1, 0]) == 5  # old data preserved
        assert int(f.data[3, 0]) == 0  # new pages zeroed
        assert f.page_id(3) == 3

    def test_resize_shrink(self, memory):
        f = memory.create_file("f", 4)
        f.resize(2)
        assert f.num_pages == 2
        assert memory.allocated_pages == 2

    def test_resize_to_zero_rejected(self, memory):
        f = memory.create_file("f", 2)
        with pytest.raises(FileError):
            f.resize(0)

    def test_resize_respects_capacity(self):
        small = PhysicalMemory(capacity_bytes=PAGE_SIZE * 4)
        f = small.create_file("f", 3)
        with pytest.raises(OutOfMemoryError):
            f.resize(5)

    def test_data_dtype_is_int64(self, memory):
        f = memory.create_file("f", 1)
        assert f.data.dtype == np.int64
        assert f.headers.dtype == np.int64

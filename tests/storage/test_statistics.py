"""Unit tests for column histograms and selectivity estimation."""

import numpy as np
import pytest

from repro.storage.statistics import (
    ColumnHistogram,
    SelectivityEstimate,
    TableStatistics,
)
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, uniform_column


class TestColumnHistogram:
    def test_uniform_estimates_are_accurate(self):
        column = uniform_column(num_pages=32, hi=1_000_000, seed=1)
        histogram = ColumnHistogram(column, buckets=64)
        values = column.values()
        for lo, hi in [(0, 100_000), (250_000, 750_000), (900_000, 1_000_000)]:
            actual = int(((values >= lo) & (values <= hi)).sum())
            estimated = histogram.estimate_rows(lo, hi)
            assert estimated == pytest.approx(actual, rel=0.10)

    def test_disjoint_range_estimates_zero(self):
        column = uniform_column(num_pages=4, hi=1000)
        histogram = ColumnHistogram(column)
        assert histogram.estimate_rows(5_000, 9_000) == 0.0
        assert histogram.estimate_rows(10, 5) == 0.0

    def test_full_range_estimates_all_rows(self):
        column = uniform_column(num_pages=4, hi=1000)
        histogram = ColumnHistogram(column)
        estimate = histogram.estimate(0, 1000)
        assert estimate.rows == pytest.approx(column.num_rows, rel=0.01)
        assert estimate.fraction == pytest.approx(1.0, rel=0.01)

    def test_constant_column(self):
        column = build_column(np.full(VALUES_PER_PAGE * 2, 7))
        histogram = ColumnHistogram(column)
        assert histogram.estimate_rows(7, 7) == pytest.approx(
            column.num_rows
        )
        assert histogram.estimate_rows(8, 9) == 0.0

    def test_page_estimate_uniform(self):
        """On uniform data the binomial page formula is near-exact."""
        column = uniform_column(num_pages=64, hi=1_000_000, seed=2)
        histogram = ColumnHistogram(column)
        lo, hi = 0, 10_000
        estimate = histogram.estimate(lo, hi)
        actual_pages = column.pages_with_values_in(lo, hi).size
        assert estimate.pages == pytest.approx(actual_pages, rel=0.25)

    def test_page_estimate_capped_at_column_size(self):
        column = uniform_column(num_pages=8, hi=100)
        estimate = ColumnHistogram(column).estimate(0, 100)
        assert estimate.pages == column.num_pages

    def test_bucket_validation(self):
        column = uniform_column(num_pages=2)
        with pytest.raises(ValueError):
            ColumnHistogram(column, buckets=0)

    def test_describe(self):
        estimate = SelectivityEstimate(rows=1234.0, fraction=0.05, pages=17.0)
        text = estimate.describe()
        assert "1,234 rows" in text
        assert "5.00%" in text
        assert "17 pages" in text


class TestTableStatistics:
    def test_histograms_cached(self):
        column = uniform_column(num_pages=4)
        stats = TableStatistics()
        assert stats.histogram(column) is stats.histogram(column)

    def test_invalidate_rebuilds(self):
        column = uniform_column(num_pages=4)
        stats = TableStatistics()
        first = stats.histogram(column)
        stats.invalidate(column)
        assert stats.histogram(column) is not first

    def test_estimate_shortcut(self):
        column = uniform_column(num_pages=4, hi=1000)
        stats = TableStatistics()
        estimate = stats.estimate(column, 0, 500)
        assert 0.4 < estimate.fraction < 0.6

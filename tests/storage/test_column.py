"""Unit tests for physical columns."""

import numpy as np
import pytest

from repro.storage.column import PhysicalColumn
from repro.vm.constants import VALUES_PER_PAGE
from repro.vm.cost import CostModel
from repro.vm.mmap_api import MemoryMapper
from repro.vm.physical import PhysicalMemory

from ..conftest import build_column


class TestCreate:
    def test_full_pages(self):
        values = np.arange(VALUES_PER_PAGE * 3)
        col = build_column(values)
        assert col.num_pages == 3
        assert col.num_rows == values.size
        assert col.valid_count(2) == VALUES_PER_PAGE

    def test_partial_last_page(self):
        values = np.arange(VALUES_PER_PAGE + 10)
        col = build_column(values)
        assert col.num_pages == 2
        assert col.valid_count(1) == 10
        assert col.valid_count(0) == VALUES_PER_PAGE

    def test_rejects_empty_and_2d(self):
        memory = PhysicalMemory(cost=CostModel())
        mapper = MemoryMapper(memory)
        with pytest.raises(ValueError):
            PhysicalColumn.create(mapper, "c", np.array([]))
        with pytest.raises(ValueError):
            PhysicalColumn.create(mapper, "c", np.zeros((2, 2)))

    def test_load_charges_writes(self):
        values = np.arange(100)
        col = build_column(values)
        assert col.mapper.cost.ledger.counter("values_written") == 100

    def test_page_ids_embedded(self):
        col = build_column(np.arange(VALUES_PER_PAGE * 4))
        assert col.file.page_id(3) == 3


class TestPointAccess:
    def test_read_write_roundtrip(self):
        col = build_column(np.arange(1000))
        assert col.read(999) == 999
        old = col.write(999, -5)
        assert old == 999
        assert col.read(999) == -5

    def test_bounds_checked(self):
        col = build_column(np.arange(10))
        with pytest.raises(IndexError):
            col.read(10)
        with pytest.raises(IndexError):
            col.write(-1, 0)

    def test_values_reflects_writes(self):
        values = np.arange(VALUES_PER_PAGE + 3)
        col = build_column(values)
        col.write(0, 777)
        out = col.values()
        assert out.size == values.size
        assert out[0] == 777
        assert out[-1] == values[-1]

    def test_values_is_a_copy(self):
        col = build_column(np.arange(10))
        out = col.values()
        out[0] = 123456
        assert col.read(0) == 0


class TestScans:
    def test_scan_page_respects_valid_count(self):
        values = np.full(VALUES_PER_PAGE + 5, 9)
        col = build_column(values)
        result = col.scan_page(1, 0, 10)
        assert result.rowids.size == 5

    def test_scan_page_zero_padding_invisible(self):
        values = np.full(VALUES_PER_PAGE + 5, 9)
        col = build_column(values)
        # zeros in the padding must not match a [0, 10] query
        result = col.scan_page(1, 0, 0)
        assert result.empty

    def test_pages_with_values_in(self):
        values = np.zeros(VALUES_PER_PAGE * 4, dtype=np.int64)
        values[VALUES_PER_PAGE * 2 + 5] = 99
        col = build_column(values)
        assert col.pages_with_values_in(50, 150).tolist() == [2]
        assert col.pages_with_values_in(0, 0).tolist() == [0, 1, 2, 3]

    def test_pages_with_values_in_ignores_padding(self):
        values = np.full(VALUES_PER_PAGE + 1, 7)
        col = build_column(values)
        # the padding zeros on page 1 must not qualify for [0, 0]
        assert col.pages_with_values_in(0, 0).tolist() == []

    def test_scan_page_charge_flag(self):
        col = build_column(np.arange(100))
        before = col.mapper.cost.ledger.counter("pages_scanned")
        col.scan_page(0, 0, 10, charge=False)
        assert col.mapper.cost.ledger.counter("pages_scanned") == before
        col.scan_page(0, 0, 10)
        assert col.mapper.cost.ledger.counter("pages_scanned") == before + 1

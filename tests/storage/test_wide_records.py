"""Unit tests for wide-record columns (key + payload tuples).

The paper's Figure 3 page fractions (0.52 % of pages indexed at
k = 12,500 over a [0, 100M] uniform domain) imply roughly 42 records per
4 KiB page, i.e. ~96 B records.  Wide-record columns model exactly that;
these tests pin the layout arithmetic and the end-to-end behaviour.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig
from repro.core.snapshot import SnapshotManager
from repro.storage import layout
from repro.storage.column import PhysicalColumn
from repro.vm.constants import PAGE_SIZE, VALUES_PER_PAGE
from repro.vm.cost import CostModel
from repro.vm.mmap_api import MemoryMapper
from repro.vm.physical import PhysicalMemory

from ..conftest import reference_rows


def wide_column(num_rows=2000, record_bytes=96, seed=0, hi=100_000_000):
    memory = PhysicalMemory(capacity_bytes=256 * 1024**2, cost=CostModel())
    rng = np.random.default_rng(seed)
    values = rng.integers(0, hi, num_rows)
    return PhysicalColumn.create(
        MemoryMapper(memory), "wide", values, record_bytes=record_bytes
    )


class TestLayoutArithmetic:
    def test_records_per_page(self):
        assert layout.records_per_page(8) == VALUES_PER_PAGE
        assert layout.records_per_page(96) == 42
        assert layout.records_per_page(PAGE_SIZE - 8) == 1

    def test_bad_record_sizes(self):
        with pytest.raises(ValueError):
            layout.records_per_page(4)
        with pytest.raises(ValueError):
            layout.records_per_page(PAGE_SIZE * 2)

    def test_row_arithmetic_with_per_page(self):
        assert layout.row_to_page(42, per_page=42) == 1
        assert layout.row_to_slot(42, per_page=42) == 0
        assert layout.page_slot_to_row(1, 0, per_page=42) == 42

    def test_paper_fig3_fractions(self):
        """With 42 records/page, i.i.d. uniform [0, 100M] data indexes
        ~0.52 % of pages at k = 12,500 and ~28 % at k = 800,000 — the
        paper's stated numbers."""
        per_page = layout.records_per_page(96)
        p_low = 1 - (1 - 12_500 / 1e8) ** per_page
        p_high = 1 - (1 - 800_000 / 1e8) ** per_page
        assert p_low == pytest.approx(0.0052, rel=0.02)
        assert p_high == pytest.approx(0.279, rel=0.05)


class TestWideColumn:
    def test_geometry(self):
        col = wide_column(num_rows=100, record_bytes=96)
        assert col.values_per_page == 42
        assert col.num_pages == layout.pages_for_rows(100, 42)
        assert col.value_cost_factor == 12

    def test_point_access(self):
        col = wide_column(num_rows=100)
        old = col.write(50, 12345)
        assert col.read(50) == 12345
        assert isinstance(old, int)

    def test_page_of_row(self):
        col = wide_column(num_rows=100, record_bytes=96)
        assert col.page_of_row(0) == 0
        assert col.page_of_row(42) == 1

    def test_scan_page_rowids(self):
        col = wide_column(num_rows=100, record_bytes=96, hi=1000)
        result = col.scan_page(1, 0, 1000)
        assert result.rowids.min() >= 42
        assert result.rowids.max() < 84

    def test_scan_cost_scales_with_record_bytes(self):
        narrow = wide_column(num_rows=4200, record_bytes=8)
        wide = wide_column(num_rows=4200, record_bytes=96)
        with narrow.mapper.cost.region() as narrow_region:
            narrow.scan_page(0, 0, 10)
        with wide.mapper.cost.region() as wide_region:
            wide.scan_page(0, 0, 10)
        # both scans stream roughly one page worth of bytes
        assert wide_region.elapsed_ns() == pytest.approx(
            narrow_region.elapsed_ns(), rel=0.05
        )

    def test_values_roundtrip(self):
        col = wide_column(num_rows=100)
        assert col.values().size == 100


class TestWideAdaptiveLayer:
    def test_queries_match_reference(self):
        col = wide_column(num_rows=42 * 64, record_bytes=96, hi=1_000_000)
        layer = AdaptiveStorageLayer(col, AdaptiveConfig(max_views=5))
        values = col.values()
        for lo, hi in [(0, 100_000), (500_000, 600_000), (0, 100_000)]:
            result = layer.answer_query(lo, hi)
            expected = reference_rows(values, lo, hi)
            assert np.array_equal(np.sort(result.rowids), expected)

    def test_maintenance_on_wide_column(self):
        from repro.storage.updates import UpdateBatch, UpdateRecord

        col = wide_column(num_rows=42 * 64, record_bytes=96, hi=1_000_000)
        layer = AdaptiveStorageLayer(col, AdaptiveConfig(max_views=5))
        layer.answer_query(0, 100_000)
        batch = UpdateBatch()
        rng = np.random.default_rng(1)
        for row in rng.integers(0, col.num_rows, 100).tolist():
            new = int(rng.integers(0, 1_000_000))
            old = col.write(int(row), new)
            batch.append(UpdateRecord(row=int(row), old=old, new=new))
        layer.apply_updates(batch)
        result = layer.answer_query(0, 100_000)
        expected = reference_rows(col.values(), 0, 100_000)
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_snapshot_on_wide_column(self):
        col = wide_column(num_rows=42 * 16, record_bytes=96, hi=1000)
        with SnapshotManager(col) as manager:
            snap = manager.create_snapshot()
            frozen = col.values()
            col.write(0, 999_999)
            assert np.array_equal(snap.values(), frozen)
            rowids, _ = snap.scan(0, 1000)
            assert np.array_equal(
                np.sort(rowids), reference_rows(frozen, 0, 1000)
            )


class TestWideBaselines:
    def test_all_variants_agree(self):
        from repro.baselines import VARIANTS
        from repro.storage.updates import UpdateBatch, UpdateRecord

        results = []
        for variant_cls in VARIANTS.values():
            col = wide_column(num_rows=42 * 32, record_bytes=96, seed=2)
            index = variant_cls(col, 0, 10_000_000)
            index.build()
            rng = np.random.default_rng(3)
            batch = UpdateBatch()
            for row in rng.integers(0, col.num_rows, 50).tolist():
                new = int(rng.integers(0, 100_000_000))
                old = col.write(int(row), new)
                batch.append(UpdateRecord(row=int(row), old=old, new=new))
            index.apply_updates(batch)
            rowids, _ = index.query(0, 5_000_000)
            results.append(sorted(rowids.tolist()))
        assert all(r == results[0] for r in results)

"""Unit and property tests for update batches and compaction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.updates import UpdateBatch, UpdateRecord
from repro.vm.constants import VALUES_PER_PAGE


class TestUpdateRecord:
    def test_page_derivation(self):
        assert UpdateRecord(row=0, old=1, new=2).page == 0
        assert UpdateRecord(row=VALUES_PER_PAGE, old=1, new=2).page == 1


class TestUpdateBatch:
    def test_append_and_iterate(self):
        batch = UpdateBatch()
        batch.record(1, 10, 20)
        batch.record(2, 30, 40)
        assert len(batch) == 2
        assert batch[0] == UpdateRecord(1, 10, 20)
        assert [u.row for u in batch] == [1, 2]

    def test_compact_keeps_first_old_last_new(self):
        """The paper's example: u0, u1, u2 on one row collapse to
        (row, old_0, new_2)."""
        batch = UpdateBatch(
            [
                UpdateRecord(5, 100, 200),
                UpdateRecord(5, 200, 300),
                UpdateRecord(5, 300, 400),
            ]
        )
        compacted = batch.compact()
        assert len(compacted) == 1
        assert compacted[0] == UpdateRecord(5, 100, 400)

    def test_compact_preserves_distinct_rows(self):
        batch = UpdateBatch([UpdateRecord(1, 10, 11), UpdateRecord(2, 20, 21)])
        assert len(batch.compact()) == 2

    def test_compact_order_follows_first_appearance(self):
        batch = UpdateBatch(
            [UpdateRecord(9, 0, 1), UpdateRecord(3, 0, 1), UpdateRecord(9, 1, 2)]
        )
        assert [u.row for u in batch.compact()] == [9, 3]

    def test_group_by_page(self):
        batch = UpdateBatch(
            [
                UpdateRecord(0, 0, 1),
                UpdateRecord(1, 0, 1),
                UpdateRecord(VALUES_PER_PAGE, 0, 1),
            ]
        )
        groups = batch.group_by_page()
        assert sorted(groups) == [0, 1]
        assert len(groups[0]) == 2

    def test_effective_drops_noops(self):
        batch = UpdateBatch(
            [UpdateRecord(1, 5, 9), UpdateRecord(1, 9, 5), UpdateRecord(2, 1, 2)]
        )
        effective = batch.effective()
        assert [u.row for u in effective] == [2]

    def test_clear(self):
        batch = UpdateBatch([UpdateRecord(1, 0, 1)])
        batch.clear()
        assert len(batch) == 0


@settings(max_examples=200, deadline=None)
@given(
    updates=st.lists(
        st.tuples(st.integers(0, 20), st.integers(-100, 100)), max_size=80
    )
)
def test_compact_matches_replay(updates):
    """Replaying the raw batch and the compacted batch must produce the
    same final state, and compacted old values must be the original
    pre-batch values."""
    state = {row: row * 7 for row in range(21)}  # initial values
    original = dict(state)

    batch = UpdateBatch()
    for row, new in updates:
        batch.record(row, state[row], new)
        state[row] = new

    compacted = batch.compact()
    rows_touched = {row for row, _ in updates}
    assert {u.row for u in compacted} == rows_touched
    for record in compacted:
        assert record.old == original[record.row]
        assert record.new == state[record.row]
    # at most one record per row
    assert len(compacted) == len(rows_touched)

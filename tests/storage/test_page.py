"""Unit and property tests for page-level scan-and-filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.page import clamp_range, page_min_max, scan_and_filter
from repro.vm.constants import MAX_VALUE, MIN_VALUE, VALUES_PER_PAGE
from repro.vm.cost import CostModel
from repro.vm.physical import PhysicalMemory


def make_file(page_values: np.ndarray):
    memory = PhysicalMemory(capacity_bytes=64 * 1024 * 1024, cost=CostModel())
    f = memory.create_file("f", 1)
    f.data[0, : page_values.size] = page_values
    return f


class TestScanAndFilter:
    def test_basic_filter(self):
        f = make_file(np.array([5, 10, 15, 20, 25]))
        result = scan_and_filter(f, 0, 10, 20, valid_count=5)
        assert result.rowids.tolist() == [1, 2, 3]
        assert result.values.tolist() == [10, 15, 20]
        assert result.max_below == 5
        assert result.min_above == 25

    def test_rowids_derive_from_page_id(self):
        f = make_file(np.array([1, 2, 3]))
        f.set_page_id(0, 7)
        result = scan_and_filter(f, 0, 0, 100, valid_count=3)
        assert result.rowids.tolist() == [
            7 * VALUES_PER_PAGE,
            7 * VALUES_PER_PAGE + 1,
            7 * VALUES_PER_PAGE + 2,
        ]

    def test_empty_result_page(self):
        f = make_file(np.array([1, 2, 100, 200]))
        result = scan_and_filter(f, 0, 10, 50, valid_count=4)
        assert result.empty
        assert result.max_below == 2
        assert result.min_above == 100

    def test_no_values_below(self):
        f = make_file(np.array([50, 60]))
        result = scan_and_filter(f, 0, 40, 45, valid_count=2)
        assert result.max_below is None
        assert result.min_above == 50

    def test_no_values_above(self):
        f = make_file(np.array([10, 20]))
        result = scan_and_filter(f, 0, 30, 40, valid_count=2)
        assert result.max_below == 20
        assert result.min_above is None

    def test_valid_count_limits_scan(self):
        f = make_file(np.array([5, 5, 5]))
        # padding zeros beyond valid_count must be invisible
        result = scan_and_filter(f, 0, 0, 10, valid_count=3)
        assert result.rowids.size == 3
        assert result.max_below is None

    def test_cost_charged(self):
        f = make_file(np.array([1]))
        cost = CostModel()
        scan_and_filter(f, 0, 0, 10, valid_count=1, cost=cost, access_kind="random")
        assert cost.ledger.counter("pages_scanned") == 1
        assert cost.ledger.counter("values_scanned") == 1

    def test_boundaries_inclusive(self):
        f = make_file(np.array([10, 20, 30]))
        result = scan_and_filter(f, 0, 10, 30, valid_count=3)
        assert result.rowids.size == 3


class TestClampRange:
    def test_clamps_to_int64(self):
        lo, hi = clamp_range(-(2**70), 2**70)
        assert lo == MIN_VALUE
        assert hi == MAX_VALUE

    def test_leaves_normal_ranges(self):
        assert clamp_range(5, 10) == (5, 10)


class TestPageMinMax:
    def test_min_max(self):
        f = make_file(np.array([7, 3, 9]))
        assert page_min_max(f, 0, valid_count=3) == (3, 9)

    def test_empty_rejected(self):
        f = make_file(np.array([1]))
        with pytest.raises(ValueError):
            page_min_max(f, 0, valid_count=0)


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=VALUES_PER_PAGE),
    lo=st.integers(-(2**40), 2**40),
    width=st.integers(0, 2**40),
)
def test_scan_matches_reference(values, lo, width):
    """scan_and_filter agrees with a naive reference on any page."""
    hi = lo + width
    arr = np.array(values, dtype=np.int64)
    f = make_file(arr)
    result = scan_and_filter(f, 0, lo, hi, valid_count=arr.size)

    expected_slots = [i for i, v in enumerate(values) if lo <= v <= hi]
    assert result.rowids.tolist() == expected_slots
    assert result.values.tolist() == [values[i] for i in expected_slots]

    below = [v for v in values if v < lo]
    above = [v for v in values if v > hi]
    assert result.max_below == (max(below) if below else None)
    assert result.min_above == (min(above) if above else None)
    assert result.empty == (not expected_slots)

"""Unit and property tests for row/page layout arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import layout
from repro.vm.constants import VALUES_PER_PAGE


class TestLayout:
    def test_first_page(self):
        assert layout.row_to_page(0) == 0
        assert layout.row_to_slot(0) == 0
        assert layout.row_to_page(VALUES_PER_PAGE - 1) == 0

    def test_page_boundary(self):
        assert layout.row_to_page(VALUES_PER_PAGE) == 1
        assert layout.row_to_slot(VALUES_PER_PAGE) == 0

    def test_page_slot_to_row(self):
        assert layout.page_slot_to_row(3, 7) == 3 * VALUES_PER_PAGE + 7

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            layout.row_to_page(-1)
        with pytest.raises(ValueError):
            layout.row_to_slot(-1)

    def test_bad_page_slot_rejected(self):
        with pytest.raises(ValueError):
            layout.page_slot_to_row(-1, 0)
        with pytest.raises(ValueError):
            layout.page_slot_to_row(0, VALUES_PER_PAGE)

    def test_pages_for_rows(self):
        assert layout.pages_for_rows(1) == 1
        assert layout.pages_for_rows(VALUES_PER_PAGE) == 1
        assert layout.pages_for_rows(VALUES_PER_PAGE + 1) == 2

    def test_pages_for_rows_rejects_empty(self):
        with pytest.raises(ValueError):
            layout.pages_for_rows(0)

    def test_rows_in_page(self):
        num_rows = VALUES_PER_PAGE + 5
        assert layout.rows_in_page(0, num_rows) == VALUES_PER_PAGE
        assert layout.rows_in_page(1, num_rows) == 5
        assert layout.rows_in_page(2, num_rows) == 0


@given(row=st.integers(0, 10**12))
def test_row_roundtrip(row):
    """row -> (page, slot) -> row is the identity."""
    page, slot = layout.row_to_page(row), layout.row_to_slot(row)
    assert layout.page_slot_to_row(page, slot) == row
    assert 0 <= slot < VALUES_PER_PAGE


@given(num_rows=st.integers(1, 10**7))
def test_pages_cover_all_rows(num_rows):
    """pages_for_rows produces exactly enough pages."""
    pages = layout.pages_for_rows(num_rows)
    assert layout.row_to_page(num_rows - 1) == pages - 1
    assert sum(layout.rows_in_page(p, num_rows) for p in range(pages)) == num_rows

"""Unit tests for tables and the catalog."""

import numpy as np
import pytest

from repro.storage.table import Catalog, Table
from repro.storage.column import PhysicalColumn
from repro.vm.cost import CostModel
from repro.vm.mmap_api import MemoryMapper
from repro.vm.physical import PhysicalMemory


@pytest.fixture
def catalog():
    return Catalog(PhysicalMemory(capacity_bytes=256 * 1024 * 1024, cost=CostModel()))


@pytest.fixture
def table(catalog):
    return catalog.create_table(
        "t",
        {"a": np.arange(100), "b": np.arange(100) * 10},
    )


class TestTable:
    def test_columns(self, table):
        assert table.column_names == ["a", "b"]
        assert table.num_rows == 100
        assert table.column("a").num_rows == 100

    def test_missing_column(self, table):
        with pytest.raises(KeyError):
            table.column("ghost")

    def test_get_record(self, table):
        assert table.get_record(7) == (7, 70)

    def test_record_iterator(self, table):
        records = list(table.record_iterator())
        assert len(records) == 100
        assert records[3] == (3, 30)

    def test_row_count_mismatch_rejected(self, catalog):
        cols = {
            "a": PhysicalColumn.create(catalog.mapper, "x.a", np.arange(10)),
            "b": PhysicalColumn.create(catalog.mapper, "x.b", np.arange(20)),
        }
        with pytest.raises(ValueError):
            Table("x", cols)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            Table("x", {})


class TestUpdates:
    def test_update_writes_through_and_logs(self, table):
        old = table.update("a", 5, 999)
        assert old == 5
        assert table.column("a").read(5) == 999
        pending = table.pending_updates("a")
        assert len(pending) == 1
        assert pending[0].row == 5 and pending[0].old == 5 and pending[0].new == 999

    def test_update_many(self, table):
        table.update_many("b", np.array([1, 2]), np.array([111, 222]))
        assert table.column("b").read(2) == 222
        assert len(table.pending_updates("b")) == 2

    def test_update_many_shape_mismatch(self, table):
        with pytest.raises(ValueError):
            table.update_many("b", np.array([1, 2]), np.array([1]))

    def test_logs_are_per_column(self, table):
        table.update("a", 0, 1)
        assert len(table.pending_updates("b")) == 0

    def test_drain_updates_resets_log(self, table):
        table.update("a", 0, 1)
        batch = table.drain_updates("a")
        assert len(batch) == 1
        assert len(table.pending_updates("a")) == 0

    def test_pending_updates_validates_name(self, table):
        with pytest.raises(KeyError):
            table.pending_updates("ghost")


class TestCatalog:
    def test_create_and_get(self, catalog, table):
        assert catalog.get_table("t") is table
        assert catalog.tables() == [table]

    def test_duplicate_table_rejected(self, catalog, table):
        with pytest.raises(ValueError):
            catalog.create_table("t", {"a": np.arange(5)})

    def test_missing_table(self, catalog):
        with pytest.raises(KeyError):
            catalog.get_table("ghost")

    def test_drop_table_frees_memory(self, catalog, table):
        allocated = catalog.memory.allocated_pages
        assert allocated > 0
        catalog.drop_table("t")
        assert catalog.memory.allocated_pages == 0
        with pytest.raises(KeyError):
            catalog.get_table("t")

    def test_shared_cost_model(self, catalog):
        assert catalog.cost is catalog.memory.cost

    def test_column_files_are_namespaced(self, catalog, table):
        assert table.column("a").file.name == "t.a"

"""Meta-tests on the public API: docstrings, exports, importability.

These enforce the documentation discipline the repository promises:
every module, public class and public function carries a docstring, and
every name in an ``__all__`` actually resolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.vm",
    "repro.storage",
    "repro.core",
    "repro.baselines",
    "repro.workloads",
    "repro.bench",
    "repro.sql",
    "repro.native",
]


def all_modules():
    modules = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            modules.append(
                importlib.import_module(f"{package_name}.{info.name}")
            )
    return modules


MODULES = all_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_have_docstrings(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; checked at its home module
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    missing.append(f"{name}.{method_name}")
    assert not missing, f"{module.__name__}: missing docstrings on {missing}"


@pytest.mark.parametrize(
    "package_name", PACKAGES, ids=lambda n: n
)
def test_dunder_all_resolves(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists {name}"


def test_top_level_surface_is_stable():
    """The names the README relies on exist at the top level."""
    for name in (
        "AdaptiveDatabase",
        "AdaptiveConfig",
        "AdaptiveStorageLayer",
        "QueryEngine",
        "RoutingMode",
        "SnapshotManager",
        "VirtualView",
        "CostModel",
        "PhysicalColumn",
    ):
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2

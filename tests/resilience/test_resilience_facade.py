"""Facade-level resilience: health state machine, metrics, status."""

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.core.stats import ViewEvent
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.resilience import HealthState, ResilienceConfig, worst_health
from repro.substrate import make_substrate
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 16
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _armed_db(resilience=None, observe=False):
    substrate = FaultySubstrate(make_substrate("simulated"))
    values = np.arange(NUM_ROWS, dtype=np.int64)
    db = AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=substrate,
        observe=observe,
        resilience=resilience or ResilienceConfig(seed=0),
    )
    db.create_table("t", {"x": values})
    db.layer("t", "x")
    return db, substrate


def _check(db, lo, hi):
    res = db.query("t", "x", lo, hi)
    expected = np.arange(lo, min(hi, NUM_ROWS - 1) + 1, dtype=np.int64)
    assert np.array_equal(np.sort(res.rowids), expected)
    return res


def _page_range(fpage, npages=1):
    lo = fpage * VALUES_PER_PAGE
    return lo, lo + npages * VALUES_PER_PAGE - 1


class TestWorstHealth:
    def test_empty_is_healthy(self):
        assert worst_health([]) is HealthState.HEALTHY

    def test_severity_ordering(self):
        states = [HealthState.HEALTHY, HealthState.DEGRADED]
        assert worst_health(states) is HealthState.DEGRADED
        states.append(HealthState.READONLY)
        assert worst_health(states) is HealthState.READONLY


class TestHealthStateMachine:
    def test_starts_healthy(self):
        db, _ = _armed_db()
        with db:
            assert db.health() is HealthState.HEALTHY

    def test_disarmed_database_is_always_healthy(self):
        substrate = make_substrate("simulated")
        db = AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False),
            backend=substrate,
        )
        with db:
            db.create_table("t", {"x": np.arange(NUM_ROWS, dtype=np.int64)})
            db.query("t", "x", 10, 50)
            assert db.health() is HealthState.HEALTHY
            assert db.repair() is True
            assert db.resilience_status()["layers"] == {}

    def test_permanent_fault_degrades_then_repair_heals(self):
        db, substrate = _armed_db()
        with db:
            substrate.schedule = FaultSchedule(
                [FaultRule(ops="map_fixed", nth=1, transient=False)], seed=0
            )
            _check(db, *_page_range(2))
            assert db.health() is HealthState.DEGRADED
            substrate.schedule = None
            assert db.repair()
            assert db.health() is HealthState.HEALTHY
            assert db.audit().ok

    def test_fault_streak_latches_readonly(self):
        """Consecutive permanent candidate losses flip the layer
        READONLY: answers stay correct, candidate work stops, and an
        explicit repair restores HEALTHY."""
        db, substrate = _armed_db(
            ResilienceConfig(readonly_fault_threshold=2, seed=0)
        )
        with db:
            substrate.schedule = FaultSchedule(
                [
                    FaultRule(
                        ops="map_fixed", probability=1.0, transient=False
                    )
                ],
                seed=0,
            )
            _check(db, *_page_range(1))
            assert db.health() is HealthState.DEGRADED
            _check(db, *_page_range(4))
            assert db.health() is HealthState.READONLY

            # READONLY: no candidate is even attempted, answers correct.
            res = _check(db, *_page_range(7))
            assert res.stats.view_event is ViewEvent.NONE

            substrate.schedule = None
            assert db.repair()
            assert db.health() is HealthState.HEALTHY
            status = db.resilience_status()["layers"]["t.x"]
            assert status["views_rebuilt"] >= 2
            assert db.audit().ok


class TestObservability:
    def test_resilience_metrics_and_gauge(self):
        db, substrate = _armed_db(observe=True)
        with db:
            substrate.schedule = FaultSchedule(
                [
                    FaultRule(ops="map_fixed", nth=1),  # transient
                    FaultRule(ops="map_fixed", nth=2, transient=False),
                ],
                seed=0,
            )
            _check(db, *_page_range(2))  # healed by one retry
            _check(db, *_page_range(5))  # lost, quarantined
            substrate.schedule = None
            assert db.repair()

            metrics = db.observer.metrics
            retries = metrics.counter("retries_total")
            assert sum(v for _, v in retries.samples()) >= 1
            rebuilds = metrics.counter("views_rebuilt_total")
            assert rebuilds.value() >= 1
            health = metrics.gauge("resilience_health")
            assert health.value() == 0.0  # back to healthy after repair
            assert db.audit().ok


class TestStatusSurface:
    def test_status_shape(self):
        db, _ = _armed_db()
        with db:
            _check(db, *_page_range(3))
            status = db.resilience_status()
            assert status["health"] == "healthy"
            layer = status["layers"]["t.x"]
            for key in (
                "health",
                "retries",
                "retries_recovered",
                "retries_exhausted",
                "views_rebuilt",
                "rebuilds_abandoned",
                "quarantined",
                "governor_evictions",
                "governor_denials",
                "mapping_budget",
                "maps_lines",
            ):
                assert key in layer
            assert layer["mapping_budget"] is None
            assert layer["maps_lines"] >= 1

"""Tests for quarantine-and-rebuild of permanently faulted views."""

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.core.stats import ViewEvent
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.resilience import ResilienceConfig
from repro.substrate import make_substrate
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 16
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _armed_db(resilience=None):
    substrate = FaultySubstrate(make_substrate("simulated"))
    values = np.arange(NUM_ROWS, dtype=np.int64)
    db = AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=substrate,
        resilience=resilience or ResilienceConfig(seed=0),
    )
    db.create_table("t", {"x": values})
    db.layer("t", "x")  # full view materializes fault-free
    return db, substrate


def _check(db, lo, hi):
    res = db.query("t", "x", lo, hi)
    expected = np.arange(lo, min(hi, NUM_ROWS - 1) + 1, dtype=np.int64)
    assert np.array_equal(np.sort(res.rowids), expected)
    return res


def _quarantine_one_range(db, substrate):
    """Lose one candidate to a permanent fault; return its layer."""
    substrate.schedule = FaultSchedule(
        [FaultRule(ops="map_fixed", nth=1, transient=False)], seed=0
    )
    lo = 2 * VALUES_PER_PAGE
    res = _check(db, lo, lo + VALUES_PER_PAGE - 1)
    assert res.stats.view_event is ViewEvent.FAULTED
    layer = db.layer("t", "x")
    assert len(layer.view_index.quarantine) == 1
    substrate.schedule = None
    return layer


class TestQuarantineAndRebuild:
    def test_repair_rebuilds_quarantined_view(self):
        db, substrate = _armed_db()
        with db:
            layer = _quarantine_one_range(db, substrate)
            assert db.repair()
            assert not layer.view_index.quarantine
            status = db.resilience_status()["layers"]["t.x"]
            assert status["views_rebuilt"] == 1
            assert status["quarantined"] == 0
            assert any(
                e.event is ViewEvent.REBUILT
                for e in layer.view_index.history
            )
            # The rebuilt view serves queries again.
            assert layer.view_index.num_partials == 1
            lo = 2 * VALUES_PER_PAGE
            res = _check(db, lo, lo + VALUES_PER_PAGE - 1)
            assert res.stats.views_used >= 1
            assert db.audit().ok

    def test_maintenance_cycle_drains_quarantine(self):
        """The periodic path: a flush's recovery pass rebuilds the lost
        view without an explicit repair call."""
        db, substrate = _armed_db()
        with db:
            layer = _quarantine_one_range(db, substrate)
            db.update("t", "x", 5, 5)
            db.flush_updates("t", "x")
            assert not layer.view_index.quarantine
            status = db.resilience_status()["layers"]["t.x"]
            assert status["views_rebuilt"] == 1
            assert db.audit().ok

    def test_rebuild_abandoned_after_max_attempts(self):
        """Persistent permanent faults during rebuild consume bounded
        attempts, then the entry is abandoned (not retried forever)."""
        db, substrate = _armed_db(
            ResilienceConfig(rebuild_max_attempts=2, seed=0)
        )
        with db:
            layer = _quarantine_one_range(db, substrate)
            # Every rebuild attempt now dies on its first mapping call.
            substrate.schedule = FaultSchedule(
                [
                    FaultRule(
                        ops="map_fixed", probability=1.0, transient=False
                    )
                ],
                seed=0,
            )
            assert not db.repair()  # attempt 1: deferred
            assert db.repair()  # attempt 2: abandoned, quarantine empty
            assert not layer.view_index.quarantine
            status = db.resilience_status()["layers"]["t.x"]
            assert status["views_rebuilt"] == 0
            assert status["rebuilds_abandoned"] == 1
            # Queries still fall back to the full view, correctly.
            substrate.schedule = None
            _check(db, 100, 900)
            assert db.audit().ok

    def test_quarantine_is_idempotent_per_range(self):
        db, substrate = _armed_db()
        with db:
            layer = _quarantine_one_range(db, substrate)
            entry = layer.view_index.quarantine[0]
            layer.view_index.quarantine_range(entry.lo, entry.hi, "again")
            assert len(layer.view_index.quarantine) == 1

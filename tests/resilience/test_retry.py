"""Unit tests for the deterministic retry engine."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.core.stats import ViewEvent
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate, SubstrateFault
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.substrate import make_substrate
from repro.vm.cost import CostModel

NUM_ROWS = 8 * 512


def _db(schedule, resilience):
    substrate = FaultySubstrate(make_substrate("simulated"))
    values = np.arange(NUM_ROWS, dtype=np.int64)
    db = AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=substrate,
        resilience=resilience,
    )
    db.create_table("t", {"x": values})
    db.layer("t", "x")  # full view materializes fault-free
    substrate.schedule = schedule
    return db, substrate


class TestRetryPolicy:
    def test_transient_fault_is_healed(self):
        """A single transient map_fixed fault costs a retry, not a view."""
        schedule = FaultSchedule(
            [FaultRule(ops="map_fixed", nth=1)], seed=0
        )
        db, _ = _db(schedule, ResilienceConfig(seed=0))
        with db:
            result = db.query("t", "x", 100, 600)
            assert result.stats.view_event is ViewEvent.INSERTED
            status = db.resilience_status()["layers"]["t.x"]
            assert status["retries"] == 1
            assert status["retries_recovered"] == 1
            assert status["quarantined"] == 0
            assert db.audit().ok

    def test_disarmed_layer_still_drops_the_view(self):
        """Without resilience the same fault still costs the candidate."""
        schedule = FaultSchedule(
            [FaultRule(ops="map_fixed", nth=1)], seed=0
        )
        db, _ = _db(schedule, None)
        with db:
            result = db.query("t", "x", 100, 600)
            assert result.stats.view_event is ViewEvent.FAULTED
            assert db.audit().ok

    def test_permanent_fault_is_not_retried(self):
        """Permanent faults surface immediately, with zero attempts."""
        policy = RetryPolicy(make_substrate("simulated"), CostModel())
        fault = SubstrateFault("map_fixed", "enomem", transient=False)

        def fn():
            raise fault

        with pytest.raises(SubstrateFault):
            policy.run("map_fixed", fn)
        assert policy.retries == 0
        assert policy.exhausted == 0

    def test_exhaustion_raises_the_last_fault(self):
        """A fault that survives every attempt surfaces after charging
        max_attempts backoff waits."""
        cost = CostModel()
        config = ResilienceConfig(max_attempts=3, seed=0)
        policy = RetryPolicy(make_substrate("simulated"), cost, config)

        def fn():
            raise SubstrateFault("map_fixed", "maps_error", transient=True)

        with pytest.raises(SubstrateFault):
            policy.run("map_fixed", fn)
        assert policy.retries == 3
        assert policy.exhausted == 1
        _, counters = cost.ledger.snapshot()
        assert counters["backoff_waits"] == 3

    def test_backoff_is_deterministic_per_seed(self):
        """Same seed, same jittered backoff sequence; different seed,
        different jitter."""
        sub, cost = make_substrate("simulated"), CostModel()
        a = RetryPolicy(sub, cost, ResilienceConfig(seed=7))
        b = RetryPolicy(sub, cost, ResilienceConfig(seed=7))
        c = RetryPolicy(sub, cost, ResilienceConfig(seed=8))
        seq_a = [a.backoff_ns(i) for i in range(1, 4)]
        seq_b = [b.backoff_ns(i) for i in range(1, 4)]
        seq_c = [c.backoff_ns(i) for i in range(1, 4)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            make_substrate("simulated"),
            CostModel(),
            ResilienceConfig(
                backoff_base_ns=1000.0, backoff_multiplier=2.0, jitter=0.0
            ),
        )
        assert policy.backoff_ns(1) == 1000.0
        assert policy.backoff_ns(2) == 2000.0
        assert policy.backoff_ns(3) == 4000.0

    def test_retries_do_not_advance_the_schedule(self):
        """Re-attempts run suppressed: the schedule's call counters see
        only first attempts, so arming retries never shifts which later
        calls fault."""
        substrate = FaultySubstrate(make_substrate("simulated"))
        schedule = FaultSchedule(
            [FaultRule(ops="reserve", nth=1, transient=True)], seed=0
        )
        substrate.schedule = schedule
        policy = RetryPolicy(
            substrate, CostModel(), ResilienceConfig(seed=0)
        )
        policy.run("reserve", lambda: substrate.reserve(4))
        assert policy.recovered == 1
        # The faulted first attempt counted; the suppressed healing
        # re-attempt did not.
        assert schedule.counters["reserve"] == 1
        assert schedule.total_calls == 1
        # An ordinary follow-up call advances the counters again.
        substrate.reserve(4)
        assert schedule.counters["reserve"] == 2

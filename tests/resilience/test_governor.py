"""Tests for the mapping-budget governor."""

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.core.stats import ViewEvent
from repro.resilience import (
    HealthState,
    MappingGovernor,
    ResilienceConfig,
    mapping_runs,
)
from repro.substrate import make_substrate
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 32
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _make_db(resilience, backend="simulated"):
    values = np.arange(NUM_ROWS, dtype=np.int64)
    db = AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=make_substrate(backend),
        resilience=resilience,
    )
    db.create_table("t", {"x": values})
    return db


def _check(db, lo, hi):
    """Query [lo, hi] and verify against the arange oracle."""
    res = db.query("t", "x", lo, hi)
    expected = np.arange(lo, min(hi, NUM_ROWS - 1) + 1, dtype=np.int64)
    assert np.array_equal(np.sort(res.rowids), expected)
    assert np.array_equal(np.sort(res.values), expected)
    return res


def _page_range(fpage, npages=1):
    """A value range that qualifies exactly ``npages`` starting at ``fpage``."""
    lo = fpage * VALUES_PER_PAGE
    return lo, lo + npages * VALUES_PER_PAGE - 1


class TestMappingRuns:
    def test_empty_is_zero(self):
        assert mapping_runs(np.array([], dtype=np.int64)) == 0

    def test_contiguous_is_one_run(self):
        assert mapping_runs(np.array([3, 4, 5, 6])) == 1

    def test_gaps_split_runs(self):
        assert mapping_runs(np.array([1, 2, 5, 6, 9])) == 3

    def test_singletons(self):
        assert mapping_runs(np.array([7])) == 1
        assert mapping_runs(np.array([1, 3, 5])) == 3


class TestBudgetEnforcement:
    def test_line_count_stays_under_budget(self):
        """With a budget the maps-line count never exceeds it, and every
        query still returns oracle-correct results."""
        budget = 6
        db = _make_db(ResilienceConfig(mapping_budget=budget, seed=0))
        with db:
            rng = np.random.default_rng(0)
            for _ in range(24):
                fpage = int(rng.integers(0, NUM_PAGES - 2))
                npages = int(rng.integers(1, 3))
                _check(db, *_page_range(fpage, npages))
                status = db.resilience_status()["layers"]["t.x"]
                assert status["maps_lines"] <= budget
            assert db.audit().ok

    def test_evictions_journal_and_count(self):
        """Evicted views leave EVICTED_BUDGET records and bump counters."""
        budget = 4
        db = _make_db(ResilienceConfig(mapping_budget=budget, seed=0))
        with db:
            # Disjoint single-page views: each adds one maps line on top
            # of the full view's, so the budget forces evictions.
            for fpage in range(0, 12, 2):
                _check(db, *_page_range(fpage))
            status = db.resilience_status()["layers"]["t.x"]
            assert status["governor_evictions"] > 0
            layer = db.layer("t", "x")
            evicted = [
                e
                for e in layer.view_index.history
                if e.event is ViewEvent.EVICTED_BUDGET
            ]
            assert len(evicted) == status["governor_evictions"]
            assert db.audit().ok

    def test_denial_when_nothing_left_to_evict(self):
        """A budget with zero headroom over the full view denies every
        candidate — journaled, counted, and queries stay correct."""
        db = _make_db(ResilienceConfig(mapping_budget=1, seed=0))
        with db:
            res = _check(db, *_page_range(2))
            assert res.stats.view_event is ViewEvent.DENIED_BUDGET
            layer = db.layer("t", "x")
            assert layer.view_index.num_partials == 0
            status = db.resilience_status()["layers"]["t.x"]
            assert status["governor_denials"] >= 1
            assert any(
                e.event is ViewEvent.DENIED_BUDGET
                for e in layer.view_index.history
            )
            assert db.audit().ok

    def test_unreachable_budget_turns_readonly(self):
        """When eviction cannot get the line count under budget (the
        budget lies below the full view's own footprint) the governor
        latches unreachable and the layer turns READONLY; full-scan
        answers stay correct."""
        db = _make_db(ResilienceConfig(mapping_budget=1, seed=0))
        with db:
            _check(db, *_page_range(1))
            governor = db.layer("t", "x").resilience.governor
            # Model a full view whose footprint alone exceeds the budget.
            governor.line_count = lambda: governor.budget + 1
            db.update("t", "x", 10, 10)
            db.flush_updates("t", "x")
            assert governor.budget_unreachable
            assert db.health() is HealthState.READONLY
            # READONLY stops candidate investment, not answers.
            res = _check(db, *_page_range(3, 2))
            assert res.stats.view_event is ViewEvent.NONE
            assert db.audit().ok


class TestVictimSelection:
    def test_eviction_prefers_lowest_utility_then_lru(self):
        """The governor evicts the least-useful view first (hit count ×
        pages, ties LRU), never the full view."""
        db = _make_db(ResilienceConfig(seed=0))  # no budget while building
        with db:
            for fpage in (0, 4, 8):
                _check(db, *_page_range(fpage))
            # Boost two views' utility; leave the view over page 4 cold.
            for _ in range(3):
                _check(db, *_page_range(0))
                _check(db, *_page_range(8))
            layer = db.layer("t", "x")
            assert layer.view_index.num_partials == 3

            governor = MappingGovernor(
                ResilienceConfig(mapping_budget=2),
                layer.column,
                layer.view_index,
            )
            assert governor.enforce() > 0
            survivors = {v.lo for v in layer.view_index.partial_views}
            cold_lo = _page_range(4)[0]
            assert cold_lo not in survivors
            assert db.audit().ok

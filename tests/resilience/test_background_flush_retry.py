"""Regression tests: BackgroundMapper.flush routes failures through
the retry policy (satellite of the resilience PR).

The mapping thread parks faulted requests instead of crashing; flush
then heals transient faults via RetryPolicy.resume before surfacing
anything.  Without a policy the first parked fault re-raises, exactly
like the pre-resilience behaviour.
"""

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.core.stats import ViewEvent
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.resilience import ResilienceConfig
from repro.substrate import make_substrate
from repro.vm.constants import VALUES_PER_PAGE

NUM_PAGES = 16
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE


def _db(resilience, coalesce=True):
    substrate = FaultySubstrate(make_substrate("simulated"))
    values = np.arange(NUM_ROWS, dtype=np.int64)
    db = AdaptiveDatabase(
        config=AdaptiveConfig(
            background_mapping=True, coalesce_mmap=coalesce
        ),
        backend=substrate,
        resilience=resilience,
    )
    db.create_table("t", {"x": values})
    db.layer("t", "x")
    return db, substrate


def _check(db, lo, hi):
    res = db.query("t", "x", lo, hi)
    expected = np.arange(lo, min(hi, NUM_ROWS - 1) + 1, dtype=np.int64)
    assert np.array_equal(np.sort(res.rowids), expected)
    return res


class TestBackgroundFlushRetry:
    def test_flush_heals_transient_mapper_fault(self):
        db, substrate = _db(ResilienceConfig(seed=0))
        with db:
            substrate.schedule = FaultSchedule(
                [FaultRule(ops="map_fixed", nth=1)], seed=0
            )
            res = _check(db, 100, 900)
            assert res.stats.view_event is ViewEvent.INSERTED
            status = db.resilience_status()["layers"]["t.x"]
            assert status["retries_recovered"] == 1
            assert status["quarantined"] == 0
            assert db.audit().ok

    def test_flush_heals_multiple_parked_faults(self):
        """Several requests of one view can fault before flush runs;
        every transient one is healed (uncoalesced creation issues one
        request per page, so one flush parks several failures)."""
        db, substrate = _db(ResilienceConfig(seed=0), coalesce=False)
        with db:
            substrate.schedule = FaultSchedule(
                [
                    FaultRule(ops="map_fixed", nth=1),
                    FaultRule(ops="map_fixed", nth=2),
                ],
                seed=0,
            )
            lo = 2 * VALUES_PER_PAGE
            res = _check(db, lo, lo + 3 * VALUES_PER_PAGE - 1)
            assert res.stats.view_event is ViewEvent.INSERTED
            status = db.resilience_status()["layers"]["t.x"]
            assert status["retries_recovered"] == 2
            assert db.audit().ok

    def test_disarmed_flush_still_surfaces_the_fault(self):
        """Without resilience the parked fault re-raises from flush and
        the candidate is rolled back — the pre-resilience contract."""
        db, substrate = _db(None)
        with db:
            substrate.schedule = FaultSchedule(
                [FaultRule(ops="map_fixed", nth=1)], seed=0
            )
            res = _check(db, 100, 900)
            assert res.stats.view_event is ViewEvent.FAULTED
            assert db.layer("t", "x").view_index.num_partials == 0
            assert db.audit().ok

    def test_permanent_mapper_fault_is_not_retried(self):
        """Armed or not, a permanent fault parked by the mapper thread
        surfaces from flush; the resilience layer quarantines the range
        instead of retrying it."""
        db, substrate = _db(ResilienceConfig(seed=0))
        with db:
            substrate.schedule = FaultSchedule(
                [FaultRule(ops="map_fixed", nth=1, transient=False)],
                seed=0,
            )
            res = _check(db, 100, 900)
            assert res.stats.view_event is ViewEvent.FAULTED
            status = db.resilience_status()["layers"]["t.x"]
            assert status["retries"] == 0
            assert status["quarantined"] == 1
            substrate.schedule = None
            assert db.repair()
            assert db.audit().ok

"""CLI tests for the ``audit --repair`` and ``resilience`` verbs."""

import re

from repro.cli import build_parser, main


class TestParser:
    def test_audit_repair_flag(self):
        args = build_parser().parse_args(
            ["audit", "--faults", "transient", "--repair"]
        )
        assert args.command == "audit"
        assert args.faults == "transient"
        assert args.repair is True

    def test_resilience_defaults(self):
        args = build_parser().parse_args(["resilience"])
        assert args.command == "resilience"
        assert args.faults == "transient"
        assert args.budget is None


class TestMain:
    def test_audit_repair_converges(self, capsys):
        code = main(
            [
                "audit",
                "--pages",
                "32",
                "--queries",
                "16",
                "--faults",
                "transient",
                "--repair",
                "--seed",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repair" in out
        assert "converged" in out

    def test_resilience_verb_prints_counters(self, capsys):
        code = main(
            ["resilience", "--pages", "32", "--queries", "16", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "retries" in out
        assert "health" in out

    def test_resilience_with_budget(self, capsys):
        code = main(
            [
                "resilience",
                "--pages",
                "32",
                "--queries",
                "16",
                "--seed",
                "0",
                "--budget",
                "24",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        match = re.search(r"(\d+) maps lines / budget (\d+)", out)
        assert match is not None
        assert int(match.group(1)) <= int(match.group(2)) == 24

"""Recovery semantics: checkpoint + tail replay, v2 archives, tiers."""

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    SUPPORTED_VERSIONS,
    load_database,
    save_database,
)
from repro.core.config import AdaptiveConfig
from repro.core.facade import CHECKPOINT_FILE, AdaptiveDatabase
from repro.tier import TierConfig
from repro.wal import DurabilityConfig, recover_database

NUM_ROWS = 1024
CONFIG = AdaptiveConfig(background_mapping=False)


def _values() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64)


def _durable(tmp_path, **kwargs) -> AdaptiveDatabase:
    return AdaptiveDatabase(
        config=CONFIG, durable_dir=str(tmp_path), **kwargs
    )


def _column_values(db, table="t", column="x") -> np.ndarray:
    result = db.query(table, column, -100, 10_000_000)
    order = np.argsort(result.rowids)
    return result.rowids[order], result.values[order]


class TestColdStartRecovery:
    def test_replays_the_whole_log(self, tmp_path):
        db = _durable(tmp_path)
        db.create_table("t", {"x": _values()})
        db.insert("t", {"x": 7_000_000})
        db.update("t", "x", 3, -5)
        db.delete("t", "x", 10, 20)
        want = _column_values(db)
        # Abandon without close: what a SIGKILL looks like from inside.
        db._wal._fh.flush()

        recovered, report = recover_database(tmp_path)
        try:
            assert report.started_cold
            assert report.checkpoint_lsn == 0
            assert report.replayed_ops == 4  # create+insert+update+delete
            got = _column_values(recovered)
            assert np.array_equal(got[0], want[0])
            assert np.array_equal(got[1], want[1])
            audit = recovered.audit()
            assert audit.ok, audit.render()
        finally:
            recovered.close()
        db.close()

    def test_empty_directory_recovers_to_empty_database(self, tmp_path):
        recovered, report = recover_database(tmp_path)
        try:
            assert report.started_cold
            assert report.replayed_records == 0
            assert recovered.table_names() == []
        finally:
            recovered.close()

    def test_clean_close_leaves_consistent_log(self, tmp_path):
        db = _durable(tmp_path)
        db.create_table("t", {"x": _values()})
        db.insert("t", {"x": 42})
        db.close()
        recovered, report = recover_database(tmp_path)
        try:
            assert report.torn is None
            assert report.truncated_bytes == 0
            assert recovered.table("t").num_live_rows == NUM_ROWS + 1
        finally:
            recovered.close()

    def test_torn_tail_is_truncated_and_reported(self, tmp_path):
        db = _durable(tmp_path, durability=DurabilityConfig(fsync="off"))
        db.create_table("t", {"x": _values()})
        db.insert("t", {"x": 1})
        db._wal._fh.flush()
        db._wal._fh.close()
        # Tear the tail by hand: chop the last three bytes.
        seg = db._wal._active_path
        raw = seg.read_bytes()
        seg.write_bytes(raw[:-3])

        recovered, report = recover_database(tmp_path)
        try:
            assert report.torn is not None
            assert report.truncated_bytes > 0
            # The torn insert was never acked-visible: only the create
            # survived.
            assert recovered.table("t").num_live_rows == NUM_ROWS
            audit = recovered.audit()
            assert audit.ok, audit.render()
        finally:
            recovered.close()


class TestCheckpointRecovery:
    def test_replays_only_the_tail(self, tmp_path):
        db = _durable(tmp_path)
        db.create_table("t", {"x": _values()})
        db.insert("t", {"x": 100})
        db.checkpoint()
        db.insert("t", {"x": 200})
        want = _column_values(db)
        db._wal._fh.flush()

        recovered, report = recover_database(tmp_path)
        try:
            assert not report.started_cold
            assert report.checkpoint_lsn > 0
            # Only the post-checkpoint insert replays.
            assert report.replayed_ops == 1
            got = _column_values(recovered)
            assert np.array_equal(got[0], want[0])
            assert np.array_equal(got[1], want[1])
        finally:
            recovered.close()
        db.close()

    def test_checkpoint_prunes_old_segments(self, tmp_path):
        db = _durable(
            tmp_path,
            durability=DurabilityConfig(segment_bytes=256),
        )
        db.create_table("t", {"x": _values()})
        for i in range(20):
            db.insert("t", {"x": i})
        segments_before = db.wal_status()["segments"]
        assert segments_before > 1
        db.checkpoint()
        assert db.wal_status()["segments"] < segments_before
        db.close()

    def test_recovered_database_keeps_journaling(self, tmp_path):
        db = _durable(tmp_path)
        db.create_table("t", {"x": _values()})
        db.close()
        recovered, _ = recover_database(tmp_path)
        lsn_before = recovered._wal.lsn
        recovered.insert("t", {"x": 9})
        assert recovered._wal.lsn == lsn_before + 1
        assert recovered._last_acked_lsn == recovered._wal.lsn
        recovered.close()

    def test_delete_replay_merges_when_marker_was_dropped(self, tmp_path):
        """A delete whose rowids outrun the physical table forces the
        merge the dead session performed implicitly."""
        db = _durable(tmp_path)
        db.create_table("t", {"x": _values()})
        db.insert("t", {"x": 5_000_000})
        db.flush_inserts("t")
        db.delete("t", "x", 5_000_000, 5_000_000)
        db._wal._fh.flush()
        # Drop the merge marker from the log: rewrite segments without it.
        from repro.wal.records import encode_record, scan_wal

        scan = scan_wal(tmp_path)
        kept = [r for r in scan.records if r["type"] != "merge"]
        for path in scan.segments:
            path.unlink()
        (tmp_path / scan.segments[0].name).write_bytes(
            b"".join(encode_record(r) for r in kept)
        )
        recovered, _ = recover_database(tmp_path)
        try:
            assert recovered.table("t").num_live_rows == NUM_ROWS
            _, values = _column_values(recovered)
            assert 5_000_000 not in values
        finally:
            recovered.close()
        db.close()


class TestCheckpointV2:
    def test_version_constant(self):
        assert CHECKPOINT_VERSION == 2
        assert set(SUPPORTED_VERSIONS) == {1, 2}

    def test_staged_rows_and_tombstones_round_trip(self, tmp_path):
        """The v2 regression: staged write-buffer rows flush into the
        archive and tombstones persist, so a reload is exact."""
        path = str(tmp_path / "ck.npz")
        with AdaptiveDatabase(config=CONFIG) as db:
            db.create_table("t", {"x": _values()})
            db.insert("t", {"x": 3_000_000})  # staged, below threshold
            db.delete("t", "x", 0, 9)
            want_live = db.table("t").num_live_rows
            save_database(db, path)
            # Saving flushed the staged row into the columns.
            assert db.table("t").num_rows == NUM_ROWS + 1

        loaded = load_database(path)
        try:
            table = loaded.table("t")
            assert table.num_rows == NUM_ROWS + 1
            assert table.num_live_rows == want_live
            assert table.is_deleted(5)
            assert not table.is_deleted(500)
            _, values = _column_values(loaded)
            assert 3_000_000 in values
        finally:
            loaded.close()

    def test_version_1_archive_still_loads(self, tmp_path):
        """Backward compat: a v1 archive (no tombstones, no wal_lsn)
        loads as fully-live tables with a zero watermark."""
        path = str(tmp_path / "ck.npz")
        with AdaptiveDatabase(config=CONFIG) as db:
            db.create_table("t", {"x": _values()})
            save_database(db, path)

        # Rewrite the archive as version 1.
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        manifest = json.loads(
            bytes(arrays["__manifest__"].tobytes()).decode()
        )
        manifest["version"] = 1
        manifest.pop("wal_lsn", None)
        for meta in manifest["tables"].values():
            meta.pop("tombstones", None)
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)

        loaded = load_database(path)
        try:
            assert loaded.table("t").num_live_rows == NUM_ROWS
            assert loaded._checkpoint_wal_lsn == 0
        finally:
            loaded.close()

    def test_unsupported_version_rejected(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        with AdaptiveDatabase(config=CONFIG) as db:
            db.create_table("t", {"x": _values()})
            save_database(db, path)
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        manifest = json.loads(
            bytes(arrays["__manifest__"].tobytes()).decode()
        )
        manifest["version"] = 99
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_database(path)

    def test_checkpoint_file_lands_atomically(self, tmp_path):
        db = _durable(tmp_path)
        db.create_table("t", {"x": _values()})
        db.checkpoint()
        assert (tmp_path / CHECKPOINT_FILE).exists()
        assert not (tmp_path / "checkpoint.tmp.npz").exists()
        db.close()


class TestTieredRecovery:
    def test_spill_rebuilt_and_debt_reset(self, tmp_path):
        tiering = TierConfig(hot_budget=1)
        db = _durable(tmp_path, tiering=tiering)
        db.create_table("t", {"x": _values()})
        db.query("t", "x", 0, NUM_ROWS)
        want = _column_values(db)
        db._wal._fh.flush()

        recovered, _ = recover_database(tmp_path, tiering=tiering)
        try:
            store = recovered.table("t").column("x").file
            assert store.governor.debt == 0
            assert store.hot_count() <= 1
            got = _column_values(recovered)
            assert np.array_equal(got[1], want[1])
            audit = recovered.audit()
            assert audit.ok, audit.render()
        finally:
            recovered.close()
        db.close()


class TestDurabilityArgValidation:
    def test_durability_without_dir_rejected(self):
        with pytest.raises(ValueError, match="durable_dir"):
            AdaptiveDatabase(durability=DurabilityConfig())

    def test_bad_fsync_policy_rejected(self):
        with pytest.raises(ValueError, match="fsync"):
            DurabilityConfig(fsync="sometimes")

"""WriteAheadLog unit tests: rotation, caps, faults, live tail repair."""

import pytest

from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.faults.schedule import FaultKind
from repro.resilience.policy import HealthState
from repro.substrate import make_substrate
from repro.vm.cost import CostModel
from repro.wal import DurabilityConfig, WalFullError, WriteAheadLog
from repro.wal.records import scan_wal


def _record(i: int) -> dict:
    return {"type": "insert", "table": "t", "values": {"x": i}}


class TestAppend:
    def test_lsns_are_sequential_and_returned(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert [wal.append(_record(i)) for i in range(3)] == [1, 2, 3]
        assert wal.lsn == 3
        wal.close()

    def test_append_mutates_record_with_lsn(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        record = _record(0)
        wal.append(record)
        assert record["lsn"] == 1
        wal.close()

    def test_reopen_resumes_lsn_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for i in range(5):
            wal.append(_record(i))
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.lsn == 5
        assert reopened.append(_record(5)) == 6
        reopened.close()

    def test_cost_model_charges_wal_lane(self, tmp_path):
        cost = CostModel()
        wal = WriteAheadLog(tmp_path, cost=cost)
        wal.append(_record(0))
        _, counters = cost.ledger.snapshot()
        assert counters.get("wal_appends") == 1
        assert counters.get("wal_bytes", 0) > 0
        wal.close()


class TestRotation:
    def test_rotates_at_segment_budget(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityConfig(segment_bytes=128))
        for i in range(10):
            wal.append(_record(i))
        wal.close()
        assert wal.status()["segments"] > 1
        scan = scan_wal(tmp_path)
        assert scan.last_lsn == 10
        assert len(scan.segments) == wal.status()["segments"]

    def test_reopen_lands_in_last_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityConfig(segment_bytes=128))
        for i in range(10):
            wal.append(_record(i))
        wal.close()
        reopened = WriteAheadLog(
            tmp_path, DurabilityConfig(segment_bytes=128)
        )
        reopened.append(_record(10))
        reopened.close()
        scan = scan_wal(tmp_path)
        assert scan.last_lsn == 11
        assert scan.torn is None


class TestSizeCap:
    def test_full_log_latches_readonly(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityConfig(max_bytes=160))
        appended = 0
        with pytest.raises(WalFullError):
            for i in range(100):
                wal.append(_record(i))
                appended += 1
        assert appended > 0
        assert wal.is_full
        assert wal.health() is HealthState.READONLY
        # Latched: even a tiny append is refused now.
        with pytest.raises(WalFullError):
            wal.append({"type": "merge", "table": "t"})
        wal.close()

    def test_refused_append_leaves_no_bytes_and_no_lsn(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityConfig(max_bytes=160))
        with pytest.raises(WalFullError):
            for i in range(100):
                wal.append(_record(i))
        lsn = wal.lsn
        bytes_before = wal.total_bytes
        record = _record(999)
        with pytest.raises(WalFullError):
            wal.append(record)
        assert "lsn" not in record
        assert wal.lsn == lsn
        assert wal.total_bytes == bytes_before
        wal.close()
        assert scan_wal(tmp_path).last_lsn == lsn

    def test_prune_clears_the_latch(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path, DurabilityConfig(segment_bytes=96, max_bytes=400)
        )
        with pytest.raises(WalFullError):
            for i in range(100):
                wal.append(_record(i))
        assert wal.is_full
        wal.prune(wal.lsn)  # a checkpoint at the tip covers everything
        assert not wal.is_full
        assert wal.health() is HealthState.HEALTHY
        assert wal.append(_record(0)) == wal.lsn
        wal.close()


class TestFaults:
    def _faulty(self, rules, seed=0):
        substrate = FaultySubstrate(make_substrate("simulated"))
        substrate.schedule = FaultSchedule(rules, seed=seed)
        return substrate

    def test_wal_append_fault_propagates_and_logs_nothing(self, tmp_path):
        substrate = self._faulty([FaultRule(ops="wal_append", nth=2)])
        wal = WriteAheadLog(tmp_path, substrate=substrate)
        wal.append(_record(0))
        from repro.faults.errors import SubstrateFault

        with pytest.raises(SubstrateFault) as exc:
            wal.append(_record(1))
        assert exc.value.transient  # log-device hiccup: retryable
        assert wal.lsn == 1
        wal.close()
        assert scan_wal(tmp_path).last_lsn == 1

    def test_fsync_fault_absorbed_then_degraded(self, tmp_path):
        substrate = self._faulty(
            [FaultRule(ops="fsync", probability=1.0)]
        )
        wal = WriteAheadLog(
            tmp_path,
            DurabilityConfig(fsync="always", fsync_fail_threshold=3),
            substrate=substrate,
        )
        wal.append(_record(0))
        assert wal.health() is HealthState.HEALTHY
        wal.append(_record(1))
        wal.append(_record(2))
        assert wal.status()["fsync_failures"] == 3
        assert wal.health() is HealthState.DEGRADED
        # Data written is intact regardless: fsync loses only the
        # power-loss guarantee.
        wal.close()
        assert scan_wal(tmp_path).last_lsn == 3

    def test_fsync_success_resets_failure_streak(self, tmp_path):
        substrate = self._faulty(
            [FaultRule(ops="fsync", nth=1), FaultRule(ops="fsync", nth=2)]
        )
        wal = WriteAheadLog(
            tmp_path,
            DurabilityConfig(fsync="always", fsync_fail_threshold=3),
            substrate=substrate,
        )
        wal.append(_record(0))
        wal.append(_record(1))
        assert wal.status()["fsync_failures"] == 2
        wal.append(_record(2))  # third fsync succeeds
        assert wal.status()["fsync_failures"] == 0
        assert wal.health() is HealthState.HEALTHY
        wal.close()

    def test_torn_write_fault_repairs_tail_in_place(self, tmp_path):
        substrate = self._faulty(
            [
                FaultRule(
                    ops="wal_append", nth=2, kind=FaultKind.TORN_WRITE
                )
            ]
        )
        wal = WriteAheadLog(tmp_path, substrate=substrate)
        wal.append(_record(0))
        from repro.faults.errors import SubstrateFault

        with pytest.raises(SubstrateFault) as exc:
            wal.append(_record(1))
        assert not exc.value.transient  # repaired, not retried blindly
        # The live log was truncated back to the last whole frame.
        assert wal.lsn == 1
        scan = scan_wal(tmp_path)
        assert scan.torn is None
        assert scan.last_lsn == 1
        # And the log keeps working after the repair.
        assert wal.append(_record(2)) == 2
        wal.close()
        assert scan_wal(tmp_path).last_lsn == 2


class TestStatus:
    def test_status_shape(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityConfig(fsync="off"))
        wal.append(_record(0))
        status = wal.status()
        assert status["lsn"] == 1
        assert status["segments"] == 1
        assert status["fsync"] == "off"
        assert status["total_bytes"] > 0
        assert status["full"] is False
        wal.close()

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(_record(0))
        wal.close()
        wal.close()
        assert wal.closed

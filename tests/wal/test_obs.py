"""Durability observability: WAL counters, fsync spans, recovery events."""

import numpy as np

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.obs.events import TOPIC_RECOVERY
from repro.wal import DurabilityConfig, recover_database

CONFIG = AdaptiveConfig(background_mapping=False)


def _values() -> np.ndarray:
    return np.arange(256, dtype=np.int64)


class TestWalMetrics:
    def test_appends_and_bytes_counted(self, tmp_path):
        with AdaptiveDatabase(
            config=CONFIG, durable_dir=str(tmp_path), observe=True
        ) as db:
            db.create_table("t", {"x": _values()})
            db.insert("t", {"x": 1})
            db.insert("t", {"x": 2})
            metrics = db.observer.metrics
            appends = metrics.get("wal_appends_total").value()
            assert appends == db.wal_status()["lsn"] == 3
            assert (
                metrics.get("wal_bytes_total").value()
                == db.wal_status()["total_bytes"]
            )

    def test_fsync_counter_tracks_policy(self, tmp_path):
        with AdaptiveDatabase(
            config=CONFIG,
            durable_dir=str(tmp_path),
            durability=DurabilityConfig(fsync="always"),
            observe=True,
        ) as db:
            db.create_table("t", {"x": _values()})
            db.insert("t", {"x": 1})
            assert db.observer.metrics.get("wal_fsyncs_total").value() >= 2

    def test_fsync_off_counts_nothing(self, tmp_path):
        with AdaptiveDatabase(
            config=CONFIG,
            durable_dir=str(tmp_path),
            durability=DurabilityConfig(fsync="off"),
            observe=True,
        ) as db:
            db.create_table("t", {"x": _values()})
            db.insert("t", {"x": 1})
            assert db.observer.metrics.get("wal_fsyncs_total").value() == 0

    def test_non_durable_observed_session_stays_at_zero(self):
        with AdaptiveDatabase(config=CONFIG, observe=True) as db:
            db.create_table("t", {"x": _values()})
            db.insert("t", {"x": 1})
            assert db.observer.metrics.get("wal_appends_total").value() == 0


class TestWalSpans:
    def test_append_emits_wal_span(self, tmp_path):
        with AdaptiveDatabase(
            config=CONFIG, durable_dir=str(tmp_path), observe=True
        ) as db:
            db.create_table("t", {"x": _values()})
            spans = [s.name for s in db.observer.tracer.finished_spans()]
            assert "wal.append" in spans


class TestRecoveryObservability:
    def test_recovery_counts_and_publishes(self, tmp_path):
        db = AdaptiveDatabase(config=CONFIG, durable_dir=str(tmp_path))
        db.create_table("t", {"x": _values()})
        db.insert("t", {"x": 1})
        db._wal._fh.flush()  # abandon without close

        recovered, report = recover_database(tmp_path, observe=True)
        try:
            observer = recovered.observer
            assert observer.metrics.get("recoveries_total").value() == 1
            events = observer.events.recent(TOPIC_RECOVERY)
            assert len(events) == 1
            payload = events[0].payload
            assert payload["replayed"] == report.replayed_ops
            assert payload["checkpoint_lsn"] == 0
            assert payload["wal_lsn"] == recovered._wal.lsn
        finally:
            recovered.close()
        db.close()

    def test_wildcard_subscriber_sees_recovery_event(self, tmp_path):
        db = AdaptiveDatabase(config=CONFIG, durable_dir=str(tmp_path))
        db.create_table("t", {"x": _values()})
        db._wal._fh.flush()
        recovered, _ = recover_database(tmp_path, observe=True)
        try:
            topics = [e.topic for e in recovered.observer.events.recent()]
            assert TOPIC_RECOVERY in topics
        finally:
            recovered.close()
        db.close()

"""Real-process crash harness: SIGKILL the child, recover, check acks.

The child (``repro.wal.crashchild``) prints a flushed ``acked i value``
line only *after* each insert returns — after the WAL append the ack
contract requires. A line the parent read is therefore a write the
recovered database must contain, no matter where the kill landed.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.native import is_supported as native_supported
from repro.wal import recover_database
from repro.wal.crashchild import TABLE

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
KILL_AFTER_ACKS = 10
CHILD_COUNT = 100_000  # far more than the parent ever lets it finish


def _spawn_child(durable_dir: str, seed: int, backend: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.wal.crashchild",
            durable_dir,
            str(seed),
            str(CHILD_COUNT),
            backend,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _kill_after_acks(proc, n: int) -> list[tuple[int, int]]:
    """Read ``n`` ack lines then SIGKILL; returns the acked pairs."""
    acked: list[tuple[int, int]] = []
    line = proc.stdout.readline().strip()
    assert line == "ready", f"child failed to start: {line!r}\n{proc.stderr.read()}"
    for _ in range(n):
        line = proc.stdout.readline().strip()
        assert line.startswith("acked "), line
        _, i, value = line.split()
        acked.append((int(i), int(value)))
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL
    return acked


def _recovered_pairs(durable_dir, backend: str) -> dict[int, int]:
    db, report = recover_database(durable_dir, backend=backend)
    try:
        audit = db.audit()
        assert audit.ok, audit.render()
        keys = db.query(TABLE, "k", 1000, 2_000_000)
        values = db.query(TABLE, "v", -1, 2_000_000)
        by_rowid = dict(
            zip((int(r) for r in values.rowids), (int(v) for v in values.values))
        )
        return {
            int(k) - 1000: by_rowid[int(r)]
            for k, r in zip(keys.values, keys.rowids)
        }
    finally:
        db.close()


def _run_harness(tmp_path, backend: str) -> None:
    proc = _spawn_child(str(tmp_path), seed=1234, backend=backend)
    try:
        acked = _kill_after_acks(proc, KILL_AFTER_ACKS)
    finally:
        if proc.poll() is None:  # belt and braces: never leak the child
            proc.kill()
            proc.wait(timeout=30)
    assert len(acked) == KILL_AFTER_ACKS
    recovered = _recovered_pairs(tmp_path, backend)
    for i, value in acked:
        assert recovered.get(i) == value, (
            f"acked insert {i}={value} lost after SIGKILL "
            f"(recovered {len(recovered)} rows)"
        )
    # At most one in-limbo insert beyond the acked prefix.
    assert len(recovered) <= acked[-1][0] + 2


class TestSigkillRecovery:
    def test_simulated_backend_survives_sigkill(self, tmp_path):
        _run_harness(tmp_path, "simulated")

    @pytest.mark.skipif(
        not native_supported(), reason="native mmap backend unavailable"
    )
    def test_native_backend_survives_sigkill(self, tmp_path):
        _run_harness(tmp_path, "native")

    def test_child_acks_match_its_seeded_stream(self, tmp_path):
        """The acked values are the seeded stream — the harness really
        observes the child's writes, not an echo."""
        proc = _spawn_child(str(tmp_path), seed=77, backend="simulated")
        try:
            acked = _kill_after_acks(proc, 5)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        rng = np.random.default_rng(77)
        want = [int(rng.integers(0, 1_000_000)) for _ in range(5)]
        assert [v for _, v in acked] == want

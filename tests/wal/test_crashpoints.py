"""The crash-point fuzz plane: seeded crashes, recovery oracle, bit-identity.

Each schedule in the sweep arms one seeded :class:`CrashPointSchedule`
on a durable session, runs a generated op stream until the simulated
crash fires (abandoning the database object exactly as a ``SIGKILL``
would), then recovers the directory and checks the crash-recovery
contract:

* the audit (including ``wal-consistency``) is clean;
* every *acknowledged* write is present — the recovered content equals
  the acked prefix of the op stream, plus at most the single in-limbo
  op that was mid-append when the crash fired;
* ``acked ≤ replayed ≤ acked + 1`` on the logical-op counts.

The bit-identity classes pin the durability-off contract: without
``durable_dir=`` not a single WAL code path runs, so the cost ledger is
bit-identical to a bare session even with a wal/fsync/torn fault
schedule armed.

Knobs: ``REPRO_SEED``, ``REPRO_FUZZ_SCHEDULES`` (default 200).
"""

import os
import shutil
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.faults.schedule import FaultKind
from repro.seeds import derive_seed
from repro.substrate import make_substrate
from repro.wal import CrashPointSchedule, DurabilityConfig, SimulatedCrash
from repro.wal.recovery import recover_database

NUM_ROWS = 512
DOMAIN = 1_000_000
OPS_PER_SESSION = 24
CRASH_HORIZON = 20

FUZZ_SCHEDULES = int(os.environ.get("REPRO_FUZZ_SCHEDULES", "200"))

CONFIG = AdaptiveConfig(background_mapping=False)


class Model:
    """Logical ground truth: the rows a client was told are durable."""

    def __init__(self) -> None:
        self.created = False
        self.values: list[int] = []
        self.alive: list[bool] = []

    def clone(self) -> "Model":
        other = Model()
        other.created = self.created
        other.values = list(self.values)
        other.alive = list(self.alive)
        return other

    def apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "create":
            self.created = True
            self.values = list(op[1])
            self.alive = [True] * len(self.values)
        elif kind == "insert":
            self.values.append(op[1])
            self.alive.append(True)
        elif kind == "update":
            self.values[op[1]] = op[2]
        elif kind == "delete":
            lo, hi = op[1], op[2]
            for i, value in enumerate(self.values):
                if self.alive[i] and lo <= value <= hi:
                    self.alive[i] = False
        elif kind in ("flush", "query"):
            pass  # no logical content change
        else:  # pragma: no cover - generator bug
            raise ValueError(kind)

    def content(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        pairs = [
            (row, value)
            for row, (value, live) in enumerate(zip(self.values, self.alive))
            if live
        ]
        return tuple(r for r, _ in pairs), tuple(v for _, v in pairs)


def _db_content(db) -> tuple[tuple[int, ...], tuple[int, ...]]:
    if "t" not in db.table_names():
        return (), ()
    result = db.query("t", "x", -1, DOMAIN + 1)
    order = np.argsort(result.rowids)
    return (
        tuple(int(r) for r in result.rowids[order]),
        tuple(int(v) for v in result.values[order]),
    )


def _generated_ops(rng: np.random.Generator, count: int) -> list[tuple]:
    values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
    ops: list[tuple] = [("create", values)]
    for _ in range(count):
        roll = rng.random()
        if roll < 0.40:
            ops.append(("insert", int(rng.integers(0, DOMAIN))))
        elif roll < 0.65:
            ops.append(
                (
                    "update",
                    int(rng.integers(0, NUM_ROWS)),
                    int(rng.integers(0, DOMAIN)),
                )
            )
        elif roll < 0.80:
            width = int(rng.integers(1, DOMAIN // 10))
            lo = int(rng.integers(0, DOMAIN - width))
            ops.append(("delete", lo, lo + width))
        elif roll < 0.90:
            ops.append(("flush",))
        else:
            width = int(rng.integers(1, DOMAIN // 4))
            lo = int(rng.integers(0, DOMAIN - width))
            ops.append(("query", lo, lo + width))
    return ops


def _issue(db, op: tuple) -> None:
    kind = op[0]
    if kind == "create":
        db.create_table("t", {"x": op[1]})
    elif kind == "insert":
        db.insert("t", {"x": op[1]})
    elif kind == "update":
        db.update("t", "x", op[1], op[2])
    elif kind == "delete":
        db.delete("t", "x", op[1], op[2])
    elif kind == "flush":
        db.flush_inserts("t")
    elif kind == "query":
        db.query("t", "x", op[1], op[2])


def _run_crash_session(seed: int) -> dict:
    """One armed session + recovery; returns what happened.

    The crash-recovery contract is asserted inside; the returned dict
    feeds the sweep's coverage assertions.
    """
    rng = np.random.default_rng(seed)
    ops = _generated_ops(rng, OPS_PER_SESSION)
    schedule = CrashPointSchedule(seed, horizon=CRASH_HORIZON)
    durable_dir = tempfile.mkdtemp(prefix="repro-crashfuzz-")
    model = Model()
    acked_ops = 0
    pending: tuple | None = None
    try:
        db = AdaptiveDatabase(
            config=CONFIG,
            durable_dir=durable_dir,
            durability=DurabilityConfig(fsync="off"),
        )
        db._wal.crashpoints = schedule
        try:
            for op in ops:
                if op[0] == "update" and (
                    op[1] >= len(model.alive) or not model.alive[op[1]]
                ):
                    continue  # would be refused pre-journal; skip
                pending = op
                _issue(db, op)
                pending = None
                if op[0] in ("create", "insert", "update", "delete"):
                    acked_ops += 1
                model.apply(op)
        except SimulatedCrash:
            pass  # abandon the db object: in-process SIGKILL
        else:
            db._wal._fh.flush()

        recovered, report = recover_database(
            durable_dir, durability=DurabilityConfig(fsync="off")
        )
        try:
            audit = recovered.audit()
            assert audit.ok, (
                f"seed {seed}: post-recovery audit failed "
                f"({schedule.describe()})\n{audit.render()}"
            )
            assert acked_ops <= report.replayed_ops <= acked_ops + 1, (
                f"seed {seed}: acked {acked_ops} vs replayed "
                f"{report.replayed_ops} ({schedule.describe()})"
            )
            candidates = [model.content()]
            if pending is not None:
                limbo = model.clone()
                limbo.apply(pending)
                candidates.append(limbo.content())
            got = _db_content(recovered)
            assert got in candidates, (
                f"seed {seed}: recovered content matches neither the "
                f"acked prefix nor acked+limbo ({schedule.describe()})"
            )
        finally:
            recovered.close()
        return {
            "fired": schedule.fired,
            "phase": schedule.crash_phase if schedule.fired else None,
            "truncated": report.truncated_bytes,
            "replayed": report.replayed_ops,
        }
    finally:
        shutil.rmtree(durable_dir, ignore_errors=True)


class TestCrashPointSweep:
    def test_bulk_seeded_schedules(self):
        """≥200 seeded crash points (REPRO_FUZZ_SCHEDULES) hold the
        crash-recovery contract — and the sweep genuinely crashes at
        every protocol phase, including torn tails."""
        fired = 0
        phases: dict[str, int] = {}
        truncations = 0
        for i in range(FUZZ_SCHEDULES):
            seed = derive_seed(30_000 + i)
            outcome = _run_crash_session(seed)
            if outcome["fired"]:
                fired += 1
                phases[outcome["phase"]] = phases.get(outcome["phase"], 0) + 1
            if outcome["truncated"]:
                truncations += 1
        assert fired >= FUZZ_SCHEDULES // 4, (
            f"only {fired} of {FUZZ_SCHEDULES} schedules crashed — the "
            "horizon is too deep for the workload"
        )
        missing = set(
            ("before_append", "torn", "after_append", "after_fsync")
        ) - set(phases)
        assert not missing, f"phases never exercised: {sorted(missing)}"
        assert truncations > 0, "no torn tail was ever truncated"

    def test_sweep_entry_is_deterministic(self):
        """Replaying one sweep seed crashes at the identical point and
        recovers the identical content."""
        seed = derive_seed(30_011)
        outcomes = [_run_crash_session(seed) for _ in range(2)]
        assert outcomes[0] == outcomes[1]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_contract_holds_for_arbitrary_seeds(self, seed):
        """∀ seeds: the crash-recovery contract holds."""
        _run_crash_session(seed)


def _durability_fault_schedule(seed: int) -> FaultSchedule:
    """A schedule aimed squarely at the WAL fault surface."""
    return FaultSchedule(
        [
            FaultRule(ops="wal_append", probability=0.2),
            FaultRule(ops="fsync", probability=0.2),
            FaultRule(
                ops="wal_append",
                probability=0.1,
                kind=FaultKind.TORN_WRITE,
            ),
        ],
        seed=seed,
    )


def _ledger_of(substrate, ops, durable_dir=None):
    """Cost-ledger snapshot of one fixed session on ``substrate``."""
    kwargs = {}
    if durable_dir is not None:
        kwargs = {
            "durable_dir": durable_dir,
            "durability": DurabilityConfig(fsync="off"),
        }
    model = Model()
    with AdaptiveDatabase(config=CONFIG, backend=substrate, **kwargs) as db:
        for op in ops:
            if op[0] == "update" and (
                op[1] >= len(model.alive) or not model.alive[op[1]]
            ):
                continue
            _issue(db, op)
            model.apply(op)
        return db.cost.ledger.snapshot()


class TestDurabilityOffBitIdentity:
    """Durability off = WAL code invisible on the ledger, fuzz-enforced."""

    def test_off_session_matches_bare_substrate(self):
        seed = derive_seed(9)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 16)

        bare = _ledger_of(make_substrate("simulated"), ops)
        faulty = FaultySubstrate(make_substrate("simulated"))
        faulty.schedule = _durability_fault_schedule(seed)
        armed = _ledger_of(faulty, ops)
        assert armed == bare
        assert faulty.schedule.faults_fired == 0

    def test_off_ledger_carries_no_wal_counters(self):
        seed = derive_seed(9)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 16)
        _, counters = _ledger_of(make_substrate("simulated"), ops)
        assert [k for k in counters if "wal" in k or "fsync" in k] == []

    @settings(max_examples=10, deadline=None)
    @given(data_seed=st.integers(0, 2**32 - 1))
    def test_off_cost_is_deterministic_and_schedule_blind(self, data_seed):
        """∀ seeds: arming a WAL fault schedule never perturbs a
        durability-off session's ledger."""
        rng = np.random.default_rng(data_seed)
        ops = _generated_ops(rng, 10)
        bare = _ledger_of(make_substrate("simulated"), ops)
        faulty = FaultySubstrate(make_substrate("simulated"))
        faulty.schedule = _durability_fault_schedule(data_seed)
        assert _ledger_of(faulty, ops) == bare
        assert faulty.schedule.faults_fired == 0

    def test_durable_session_does_charge_wal_costs(self, tmp_path):
        """The contrast case: durability on shows up on the ledger."""
        seed = derive_seed(9)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 16)
        _, counters = _ledger_of(
            make_substrate("simulated"), ops, durable_dir=str(tmp_path)
        )
        assert counters.get("wal_appends", 0) > 0
        assert counters.get("wal_bytes", 0) > 0

"""Frame codec and tail-scanner semantics of the WAL record layer."""

import numpy as np
import pytest

from repro.wal.records import (
    HEADER,
    decode_array,
    encode_array,
    encode_record,
    list_segments,
    scan_wal,
    segment_name,
    truncate_torn,
)


class TestFraming:
    def test_frame_layout(self):
        frame = encode_record({"type": "insert", "lsn": 1})
        crc, length = HEADER.unpack_from(frame)
        assert len(frame) == HEADER.size + length
        assert crc != 0

    def test_canonical_reencode_is_byte_identical(self):
        """Key order must not change the frame (segment bookkeeping
        re-encodes scanned records to recompute on-disk lengths)."""
        a = encode_record({"b": 2, "a": 1, "lsn": 3})
        b = encode_record({"lsn": 3, "a": 1, "b": 2})
        assert a == b

    def test_array_codec_round_trip(self):
        values = np.array([-(2**62), -1, 0, 1, 2**62], dtype=np.int64)
        assert np.array_equal(decode_array(encode_array(values)), values)

    def test_array_codec_casts_smaller_dtypes(self):
        values = np.arange(8, dtype=np.int32)
        decoded = decode_array(encode_array(values))
        assert decoded.dtype == np.int64
        assert np.array_equal(decoded, values)


class TestSegmentNaming:
    def test_names_sort_in_log_order(self):
        assert segment_name(0) < segment_name(1) < segment_name(10)

    def test_list_segments_orders_and_filters(self, tmp_path):
        (tmp_path / segment_name(2)).write_bytes(b"")
        (tmp_path / segment_name(0)).write_bytes(b"")
        (tmp_path / "not-a-segment.seg").write_bytes(b"")
        (tmp_path / "wal-1.seg").write_bytes(b"")  # wrong digit count
        names = [p.name for p in list_segments(tmp_path)]
        assert names == [segment_name(0), segment_name(2)]

    def test_missing_directory_is_empty(self, tmp_path):
        assert list_segments(tmp_path / "nope") == []


def _write_segment(path, records):
    path.write_bytes(b"".join(encode_record(r) for r in records))


class TestScan:
    def test_clean_log(self, tmp_path):
        records = [{"type": "insert", "lsn": i} for i in (1, 2, 3)]
        _write_segment(tmp_path / segment_name(0), records)
        scan = scan_wal(tmp_path)
        assert scan.torn is None
        assert scan.records == records
        assert scan.last_lsn == 3
        assert scan.truncated_bytes == 0

    def test_empty_directory(self, tmp_path):
        scan = scan_wal(tmp_path)
        assert scan.records == []
        assert scan.last_lsn == 0

    @pytest.mark.parametrize(
        "mutilate,reason",
        [
            (lambda raw: raw[:-3], "short"),  # mid-body tear
            (lambda raw: raw[:-1], "short"),
            (
                lambda raw: raw[: -len(raw) // 3] + b"\x00" * (len(raw) // 3),
                "crc mismatch",
            ),
        ],
    )
    def test_torn_tail_truncates_at_last_whole_frame(
        self, tmp_path, mutilate, reason
    ):
        good = [{"type": "insert", "lsn": 1}, {"type": "insert", "lsn": 2}]
        tail = encode_record({"type": "insert", "lsn": 3})
        path = tmp_path / segment_name(0)
        prefix = b"".join(encode_record(r) for r in good)
        path.write_bytes(prefix + mutilate(tail))
        scan = scan_wal(tmp_path)
        assert scan.last_lsn == 2
        assert scan.torn is not None
        assert reason in scan.torn.reason
        assert scan.valid_end[path.name] == len(prefix)

    def test_corrupt_crc_with_valid_length_detected(self, tmp_path):
        frame = bytearray(encode_record({"type": "insert", "lsn": 1}))
        frame[HEADER.size] ^= 0xFF  # flip one body byte, CRC now stale
        (tmp_path / segment_name(0)).write_bytes(bytes(frame))
        scan = scan_wal(tmp_path)
        assert scan.records == []
        assert scan.torn.reason == "crc mismatch"

    def test_tear_discards_all_later_segments(self, tmp_path):
        _write_segment(
            tmp_path / segment_name(0), [{"type": "insert", "lsn": 1}]
        )
        torn = encode_record({"type": "insert", "lsn": 2})
        (tmp_path / segment_name(1)).write_bytes(torn[: len(torn) // 2])
        _write_segment(
            tmp_path / segment_name(2), [{"type": "insert", "lsn": 3}]
        )
        scan = scan_wal(tmp_path)
        # lsn 3 is a *valid* frame, but it was appended after the torn
        # record — trusting it would replay out of order.
        assert scan.last_lsn == 1
        assert scan.torn.segment == segment_name(1)
        assert scan.valid_end[segment_name(2)] == 0


class TestTruncateTorn:
    def test_repairs_tear_and_unlinks_later_segments(self, tmp_path):
        keep = encode_record({"type": "insert", "lsn": 1})
        torn = encode_record({"type": "insert", "lsn": 2})
        seg0 = tmp_path / segment_name(0)
        seg1 = tmp_path / segment_name(1)
        seg0.write_bytes(keep + torn[: len(torn) // 2])
        _write_segment(seg1, [{"type": "insert", "lsn": 3}])
        seg1_size = seg1.stat().st_size
        scan = scan_wal(tmp_path)
        removed = truncate_torn(tmp_path, scan)
        assert removed == len(torn) // 2 + seg1_size
        assert seg0.stat().st_size == len(keep)
        assert not seg1.exists()
        # The repaired log scans clean.
        rescanned = scan_wal(tmp_path)
        assert rescanned.torn is None
        assert rescanned.last_lsn == 1

    def test_noop_on_clean_log(self, tmp_path):
        _write_segment(
            tmp_path / segment_name(0), [{"type": "insert", "lsn": 1}]
        )
        scan = scan_wal(tmp_path)
        assert truncate_torn(tmp_path, scan) == 0

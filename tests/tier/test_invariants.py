"""Property-based tier-invariant suite (this PR's acceptance suite).

Generated sessions interleave queries, updates, flushes, appends and
write-buffer merges against a :class:`TieredPageStore` under an
arbitrary hot budget.  After **every** step the invariant auditor
(including the ``tier-placement`` invariant) must pass and every query
result must equal a plain numpy oracle — tiering may move pages, never
answers.  After maintenance, with no faults armed, the governor must be
debt-free and within budget.

Knobs: ``REPRO_SEED`` re-seeds the deterministic tests.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.tier import TierConfig, TieredPageStore, WriteBuffer
from repro.vm.cost import CostModel

NUM_PAGES = 8
SLOTS = 512
NUM_ROWS = NUM_PAGES * SLOTS
DOMAIN = 1_000_000


class Oracle:
    """Serial ground truth: a growable numpy column with tombstones."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = values.copy()
        self.alive = np.ones(values.size, dtype=bool)

    def query(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        mask = self.alive & (self.values >= lo) & (self.values <= hi)
        rowids = np.nonzero(mask)[0]
        return rowids, self.values[rowids]

    def update(self, row: int, value: int) -> None:
        self.values[row] = value

    def append(self, value: int) -> None:
        self.values = np.append(self.values, np.int64(value))
        self.alive = np.append(self.alive, True)

    def delete(self, lo: int, hi: int) -> None:
        mask = self.alive & (self.values >= lo) & (self.values <= hi)
        self.alive[mask] = False


def _assert_query_matches(db, oracle, lo, hi, context=""):
    result = db.query("t", "x", lo, hi)
    want_rows, want_vals = oracle.query(lo, hi)
    order = np.argsort(result.rowids)
    got_rows = result.rowids[order]
    got_vals = result.values[order]
    assert np.array_equal(got_rows, want_rows) and np.array_equal(
        got_vals, want_vals
    ), (
        f"{context}: query [{lo}, {hi}] diverged from oracle "
        f"({got_rows.size} vs {want_rows.size} rows)"
    )


def _assert_tier_consistent(store: TieredPageStore, context=""):
    """Exactly-one-tier, directly on the placement structures."""
    cold = np.array(store.cold.pages(), dtype=np.int64)
    expected = np.nonzero(~store.hot)[0]
    assert np.array_equal(cold, expected), (
        f"{context}: cold tier {cold.tolist()} != complement of hot "
        f"{expected.tolist()}"
    )
    budget = store.governor.budget
    if budget is not None:
        assert store.hot_count() <= budget + store.governor.debt, (
            f"{context}: {store.hot_count()} hot pages over budget "
            f"{budget} + debt {store.governor.debt}"
        )


def _run_tiered_session(
    ops: list[tuple], hot_budget: int, data_seed: int
) -> dict:
    """Run one audited tiered session against the oracle.

    Returns the final tier status.  Asserts, after every step, that the
    auditor (tier-placement invariant included) passes, the placement
    is exactly-one-tier, and query results match the oracle.
    """
    rng = np.random.default_rng(data_seed)
    values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
    oracle = Oracle(values)

    with AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        tiering=TierConfig(hot_budget=hot_budget, write_buffer_rows=64),
    ) as db:
        db.create_table("t", {"x": values})
        store = db.table("t").column("x").file
        assert isinstance(store, TieredPageStore)

        for step, op in enumerate(ops):
            context = f"step {step} ({op[0]})"
            if op[0] == "query":
                _assert_query_matches(db, oracle, op[1], op[2], context)
            elif op[0] == "update":
                row = op[1] % db.table("t").num_rows
                if not oracle.alive[row]:
                    continue  # updating a tombstoned row raises by design
                db.update("t", "x", row, op[2])
                oracle.update(row, op[2])
            elif op[0] == "flush":
                db.flush_updates("t", "x")
            elif op[0] == "append":
                for value in op[1]:
                    db.insert("t", {"x": value})
                    oracle.append(value)
            elif op[0] == "merge":
                db.flush_inserts("t")
            elif op[0] == "delete":
                db.delete("t", "x", op[1], op[2])
                oracle.delete(op[1], op[2])

            _assert_tier_consistent(store, context)
            audit = db.audit()
            assert audit.ok, f"{context}:\n{audit.render()}"

        # Faultless sessions end debt-free and within budget once
        # maintenance has run.
        db.flush_inserts("t")
        store.maintenance(db.cost)
        assert store.governor.debt == 0
        assert store.spill_failures == 0
        assert store.hot_count() <= hot_budget
        _assert_tier_consistent(store, "final")
        audit = db.audit()
        assert audit.ok, f"final audit:\n{audit.render()}"

        # Every read is still oracle-identical after enforcement.
        _assert_query_matches(db, oracle, 0, DOMAIN, "final full query")
        return db.tier_status()["t.x"]


OPS_STRATEGY = st.lists(
    st.one_of(
        st.tuples(
            st.just("query"),
            st.integers(0, DOMAIN // 2),
            st.integers(DOMAIN // 2, DOMAIN),
        ),
        st.tuples(
            st.just("update"),
            st.integers(0, NUM_ROWS - 1),
            st.integers(0, DOMAIN),
        ),
        st.tuples(st.just("flush")),
        st.tuples(
            st.just("append"),
            st.lists(st.integers(0, DOMAIN), min_size=1, max_size=40),
        ),
        st.tuples(st.just("merge")),
        st.tuples(
            st.just("delete"),
            st.integers(0, DOMAIN // 4),
            st.integers(DOMAIN // 4, DOMAIN // 2),
        ),
    ),
    min_size=1,
    max_size=16,
)


class TestTierInvariantProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=OPS_STRATEGY,
        hot_budget=st.integers(1, NUM_PAGES),
        data_seed=st.integers(0, 2**32 - 1),
    )
    def test_tiered_sessions_stay_invariant(self, ops, hot_budget, data_seed):
        """∀ op sequences, ∀ hot budgets: every page lives in exactly one
        tier, the budget holds after enforcement, audits pass and every
        read is oracle-identical."""
        _run_tiered_session(ops, hot_budget, data_seed)

    @settings(max_examples=10, deadline=None)
    @given(data_seed=st.integers(0, 2**32 - 1))
    def test_minimal_budget_is_correct(self, data_seed):
        """The most hostile budget (one hot page) still answers exactly."""
        status = _run_tiered_session(
            [("query", 0, DOMAIN), ("query", 0, DOMAIN // 3), ("flush",)],
            hot_budget=1,
            data_seed=data_seed,
        )
        assert status["hot_pages"] <= 1 + status["debt"]


class TestTierMechanics:
    """Deterministic placement mechanics, directly on the store."""

    def _make_db(self, hot_budget=3, seed=7):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        db = AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False),
            tiering=TierConfig(hot_budget=hot_budget),
        )
        db.create_table("t", {"x": values})
        return db, values

    def test_initial_placement_keeps_prefix_hot(self):
        db, _ = self._make_db(hot_budget=3)
        store = db.table("t").column("x").file
        assert store.hot_count() == 3
        assert store.hot[:3].all() and not store.hot[3:].any()
        db.close()

    def test_repeated_access_promotes(self):
        db, _ = self._make_db(hot_budget=3)
        store = db.table("t").column("x").file
        before = store.promotions
        for _ in range(4):
            db.query("t", "x", 0, DOMAIN)
        assert store.promotions > before
        assert store.hot_count() <= 3 + store.governor.debt
        db.close()

    def test_denial_journal_records_refusals(self):
        db, _ = self._make_db(hot_budget=2)
        store = db.table("t").column("x").file
        # Pin every hot page as infinitely useful, then ask for more
        # admissions than the budget can ever yield.
        store.hits[:] = 0.0
        cost = CostModel()
        assert store.governor.admit(NUM_PAGES + 1, cost) is False
        assert store.governor.denials == 1
        assert store.governor.journal[-1]["action"] == "deny"
        db.close()

    def test_maintenance_decays_and_enforces(self):
        db, _ = self._make_db(hot_budget=2)
        store = db.table("t").column("x").file
        db.query("t", "x", 0, DOMAIN)
        hits_before = store.hits.copy()
        result = store.maintenance(db.cost)
        assert np.all(store.hits <= hits_before)
        assert store.hot_count() <= 2
        assert result["thrashing"] in (False, True)
        db.close()

    def test_thrash_latch_degrades_health(self):
        db, _ = self._make_db(hot_budget=2)
        store = db.table("t").column("x").file
        store.config = TierConfig(hot_budget=2, thrash_threshold=1)
        db.query("t", "x", 0, DOMAIN)
        db.query("t", "x", 0, DOMAIN)
        store.maintenance(db.cost)
        if store.thrashing:
            assert store.tier_state() == "degraded"
            assert db.health().value == "degraded"
        db.close()

    def test_untiered_store_has_no_tier_surface(self):
        db = AdaptiveDatabase()
        rng = np.random.default_rng(7)
        db.create_table(
            "t", {"x": rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)}
        )
        file = db.table("t").column("x").file
        assert not hasattr(file, "tier_of")
        assert db.tier_status() == {}
        db.close()

    def test_rejects_non_config_tiering(self):
        with pytest.raises(TypeError, match="TierConfig"):
            AdaptiveDatabase(tiering={"hot_budget": 3})


class TestTierConfigValidation:
    def test_defaults_are_valid(self):
        config = TierConfig()
        assert config.hot_budget is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hot_budget": 0},
            {"hot_budget": -1},
            {"promote_after": 0.5},
            {"decay": -0.1},
            {"decay": 1.5},
            {"thrash_threshold": 0},
            {"write_buffer_rows": 0},
            {"spill_retries": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TierConfig(**kwargs)


class TestWriteBuffer:
    def test_staged_rows_visible_before_merge(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        with AdaptiveDatabase(
            tiering=TierConfig(hot_budget=4, write_buffer_rows=1000)
        ) as db:
            db.create_table("t", {"x": values})
            rowid = db.insert("t", {"x": DOMAIN + 5})
            assert rowid == NUM_ROWS
            assert len(db._write_buffers["t"]) == 1
            result = db.query("t", "x", DOMAIN + 5, DOMAIN + 5)
            assert result.values.tolist() == [DOMAIN + 5]
            assert result.rowids.tolist() == [NUM_ROWS]

    def test_threshold_triggers_merge(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        with AdaptiveDatabase(
            tiering=TierConfig(hot_budget=4, write_buffer_rows=4)
        ) as db:
            db.create_table("t", {"x": values})
            for i in range(4):
                db.insert("t", {"x": i})
            assert len(db._write_buffers["t"]) == 0  # auto-merged
            assert db.table("t").num_rows == NUM_ROWS + 4
            audit = db.audit()
            assert audit.ok, audit.render()

    def test_merge_grows_pages_and_stays_tiered(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        with AdaptiveDatabase(
            tiering=TierConfig(hot_budget=3, write_buffer_rows=10_000)
        ) as db:
            db.create_table("t", {"x": values})
            store = db.table("t").column("x").file
            for i in range(SLOTS + 1):  # force at least one new page
                db.insert("t", {"x": i})
            info = db.flush_inserts("t")
            assert info["merged_rows"] == SLOTS + 1
            assert store.num_pages == NUM_PAGES + 2
            assert store.hot.size == NUM_PAGES + 2
            assert store.hot_count() <= 3 + store.governor.debt
            audit = db.audit()
            assert audit.ok, audit.render()
            result = db.query("t", "x", 0, DOMAIN + 10)
            assert result.stats.result_rows == NUM_ROWS + SLOTS + 1

    def test_untiered_insert_also_works(self):
        """The ingest path is independent of tiering."""
        rng = np.random.default_rng(3)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        with AdaptiveDatabase() as db:
            db.create_table("t", {"x": values})
            db.insert("t", {"x": 42})
            db.flush_inserts("t")
            assert db.table("t").num_rows == NUM_ROWS + 1
            audit = db.audit()
            assert audit.ok, audit.render()

    def test_buffer_rejects_wrong_columns(self):
        buffer = WriteBuffer(["a", "b"])
        with pytest.raises(ValueError):
            buffer.append({"a": 1})
        with pytest.raises(ValueError):
            buffer.append({"a": 1, "b": 2, "c": 3})
        buffer.append({"a": 1, "b": 2})
        assert len(buffer) == 1

"""Native tiered sessions: the cold tier round-trips through real
on-disk spill files.

Everything here runs on the native substrate (real memfd stores, real
``mmap`` rewiring) and skips on platforms without it.  The heavy
acceptance scenario — a 64k-page column under a 25% hot budget running
a mixed workload audit-clean and oracle-identical — is additionally
gated behind ``REPRO_TIER_NATIVE_HEAVY=1`` so the default suite stays
fast.
"""

import os

import numpy as np
import pytest

from repro.core.facade import AdaptiveDatabase
from repro.native import is_supported
from repro.seeds import derive_seed
from repro.tier import TierConfig
from repro.vm.constants import VALUES_PER_PAGE

pytestmark = pytest.mark.skipif(
    not is_supported(), reason="native rewiring unsupported on this platform"
)

NUM_PAGES = 16
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE
DOMAIN = 2_000_000

HEAVY = os.environ.get("REPRO_TIER_NATIVE_HEAVY") == "1"


def _values(seed: int, rows: int = NUM_ROWS) -> np.ndarray:
    rng = np.random.default_rng(derive_seed(seed))
    return rng.integers(0, DOMAIN, size=rows, dtype=np.int64)


def _assert_query_matches(result, values, lo, hi, deleted=None):
    mask = (values >= lo) & (values <= hi)
    if deleted is not None:
        mask &= ~deleted
    order = np.argsort(result.rowids)
    np.testing.assert_array_equal(result.rowids[order], np.nonzero(mask)[0])
    np.testing.assert_array_equal(result.values[order], values[mask])


class TestNativeSpillFiles:
    def test_cold_tier_round_trips_through_spill_file(self):
        values = _values(31_000)
        db = AdaptiveDatabase(
            backend="native", tiering=TierConfig(hot_budget=4)
        )
        try:
            db.create_table("t", {"x": values})
            store = db.table("t").column("x").file
            status = store.tier_status()
            spill_path = status["spill_path"]
            assert spill_path is not None
            assert os.path.exists(spill_path)
            assert os.path.getsize(spill_path) > 0
            assert store.hot_count() <= 4
            assert len(store.cold.pages()) == NUM_PAGES - store.hot_count()

            # The spill file genuinely holds the cold bytes: reads come
            # back from disk and match the authoritative store.
            for fpage in store.cold.pages():
                np.testing.assert_array_equal(
                    store.cold.read_page(fpage),
                    np.asarray(store.page_values(fpage)),
                )

            result = db.query("t", "x", 0, DOMAIN)
            _assert_query_matches(result, values, 0, DOMAIN)
            audit = db.audit()
            assert audit.ok, audit.render()
        finally:
            db.close()
        assert not os.path.exists(spill_path)

    def test_cold_write_refreshes_spill_file(self):
        """An in-place write to a cold page lands in the spill file too
        — the on-disk far tier never goes stale."""
        values = _values(31_001)
        db = AdaptiveDatabase(
            backend="native", tiering=TierConfig(hot_budget=2)
        )
        try:
            db.create_table("t", {"x": values})
            store = db.table("t").column("x").file
            cold_page = store.cold.pages()[-1]
            row = cold_page * VALUES_PER_PAGE + 5
            db.update("t", "x", row, 999_999)
            db.flush_updates("t", "x")
            if store.tier_of(cold_page) == "cold":
                assert store.cold.read_page(cold_page)[5] == 999_999
            else:
                # The write pulled the page hot; the cold copy is gone.
                assert cold_page not in store.cold
            audit = db.audit()
            assert audit.ok, audit.render()
        finally:
            db.close()


@pytest.mark.skipif(
    not HEAVY, reason="set REPRO_TIER_NATIVE_HEAVY=1 to run the 64k-page scenario"
)
class TestNativeHeavyAcceptance:
    def test_64k_page_mixed_workload_under_quarter_budget(self):
        """The acceptance scenario: a native 64k-page column under a
        25% hot budget completes a mixed query/update/insert/delete
        workload audit-clean and oracle-identical."""
        num_pages = 65_536
        num_rows = num_pages * VALUES_PER_PAGE
        budget = num_pages // 4
        values = _values(31_064, rows=num_rows)
        rng = np.random.default_rng(derive_seed(31_065))

        db = AdaptiveDatabase(
            backend="native",
            tiering=TierConfig(hot_budget=budget, write_buffer_rows=256),
        )
        try:
            db.create_table("t", {"x": values.copy()})
            store = db.table("t").column("x").file
            assert store.tier_status()["spill_path"] is not None
            assert store.hot_count() <= budget

            live = values.copy()
            deleted = np.zeros(num_rows, dtype=bool)
            staged: list[int] = []

            def merge_staged():
                nonlocal live, deleted
                if staged:
                    live = np.concatenate(
                        [live, np.asarray(staged, dtype=np.int64)]
                    )
                    deleted = np.concatenate(
                        [deleted, np.zeros(len(staged), dtype=bool)]
                    )
                    staged.clear()

            def check_query(lo, hi):
                vals = (
                    np.concatenate(
                        [live, np.asarray(staged, dtype=np.int64)]
                    )
                    if staged
                    else live
                )
                dele = (
                    np.concatenate(
                        [deleted, np.zeros(len(staged), dtype=bool)]
                    )
                    if staged
                    else deleted
                )
                _assert_query_matches(
                    db.query("t", "x", lo, hi), vals, lo, hi, dele
                )

            for step in range(10):
                lo = int(rng.integers(0, DOMAIN - DOMAIN // 100))
                check_query(lo, lo + DOMAIN // 100)

                row = int(rng.integers(0, live.size))
                if not deleted[row]:
                    value = int(rng.integers(0, DOMAIN))
                    db.update("t", "x", row, value)
                    live[row] = value

                for _ in range(3):
                    value = int(rng.integers(0, DOMAIN))
                    db.insert("t", {"x": value})
                    staged.append(value)

                if step == 5:
                    db.flush_inserts("t")
                    merge_staged()
                    span = (DOMAIN // 2, DOMAIN // 2 + DOMAIN // 500)
                    count = db.delete("t", "x", *span)
                    mask = (
                        (live >= span[0]) & (live <= span[1]) & ~deleted
                    )
                    assert count == int(mask.sum())
                    deleted |= mask

                if step % 2 == 1:
                    store.maintenance(db.cost)
                    assert store.hot_count() <= budget + store.governor.debt

            db.flush_inserts("t")
            merge_staged()
            store.maintenance(db.cost)
            assert store.governor.debt == 0
            assert store.spill_failures == 0
            assert store.hot_count() <= budget

            check_query(0, DOMAIN)
            audit = db.audit(max_content_pages=256)
            assert audit.ok, audit.render()
        finally:
            db.close()

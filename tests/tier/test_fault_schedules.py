"""Fault-schedule fuzzing of the spill I/O paths.

Seeded :class:`FaultSchedule` programs inject ``cold_read_fail`` /
``cold_write_fail`` faults (transient by default — a congested far tier)
into tiered sessions.  After every step the auditor (tier-placement
invariant included) must pass and every query must match the numpy
oracle: a spill fault may cost a demotion or force a resident fallback,
never a wrong answer or a stale cold copy.  Each session ends with the
recovery oracle: faults disarmed, one maintenance cycle must clear the
governor's debt and restore the budget.

The cost bit-identity class pins the disarmed-tiering contract: an
*untiered* session is bit-identical in simulated cost to a bare run
even with a cold-fault schedule armed — no tier code runs, so no
cold op is ever consulted and no tier counter appears in the ledger.

Knobs: ``REPRO_SEED``, ``REPRO_FUZZ_SCHEDULES`` (default 200).
"""

import os

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.faults import FaultRule, FaultSchedule, FaultySubstrate
from repro.seeds import derive_seed
from repro.substrate import make_substrate
from repro.tier import TierConfig

NUM_PAGES = 8
NUM_ROWS = NUM_PAGES * 512
DOMAIN = 1_000_000

FUZZ_SCHEDULES = int(os.environ.get("REPRO_FUZZ_SCHEDULES", "200"))


class Oracle:
    """Serial fault-free ground truth: a plain numpy column."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = values.copy()
        self.alive = np.ones(values.size, dtype=bool)

    def query(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        mask = self.alive & (self.values >= lo) & (self.values <= hi)
        rowids = np.nonzero(mask)[0]
        return rowids, self.values[rowids]

    def update(self, row: int, value: int) -> None:
        self.values[row] = value

    def delete(self, lo: int, hi: int) -> None:
        mask = self.alive & (self.values >= lo) & (self.values <= hi)
        self.alive[mask] = False


def _spill_schedule(seed: int) -> FaultSchedule:
    """The sweep's fault program: both spill ops, transient and not."""
    return FaultSchedule(
        [
            FaultRule(ops="cold_read", probability=0.15),
            FaultRule(ops="cold_write", probability=0.15),
            # Permanent variants exercise the fallback / abandon paths.
            FaultRule(ops="cold_read", probability=0.05, transient=False),
            FaultRule(ops="cold_write", probability=0.05, transient=False),
        ],
        seed=seed,
    )


def _range(rng: np.random.Generator) -> tuple[int, int]:
    width = int(rng.integers(DOMAIN // 100, DOMAIN // 6))
    lo = int(rng.integers(0, DOMAIN - width))
    return lo, lo + width


def _generated_ops(rng: np.random.Generator, count: int) -> list[tuple]:
    ops: list[tuple] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.45:
            ops.append(("query", *_range(rng)))
        elif roll < 0.70:
            ops.append(
                (
                    "update",
                    int(rng.integers(0, NUM_ROWS)),
                    int(rng.integers(0, DOMAIN)),
                )
            )
        elif roll < 0.80:
            ops.append(("flush",))
        else:
            ops.append(("delete", *_range(rng)))
    return ops


def _run_session(
    ops: list[tuple],
    schedule: FaultSchedule | None,
    data_seed: int,
    hot_budget: int = 3,
) -> tuple[int, dict]:
    """One audited tiered session under spill faults, oracle-checked.

    Returns (faults fired, final tier status).  Ends with the recovery
    oracle: faults disarmed, maintenance clears the debt, the audit is
    clean, and every query of the session matches the oracle again.
    """
    rng = np.random.default_rng(data_seed)
    values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
    oracle = Oracle(values)
    substrate = FaultySubstrate(make_substrate("simulated"))

    with AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=substrate,
        tiering=TierConfig(hot_budget=hot_budget, spill_retries=2),
    ) as db:
        db.create_table("t", {"x": values})
        store = db.table("t").column("x").file
        substrate.schedule = schedule  # setup above stays fault-free

        for step, op in enumerate(ops):
            if op[0] == "query":
                _, lo, hi = op
                result = db.query("t", "x", lo, hi)
                want_rows, want_vals = oracle.query(lo, hi)
                order = np.argsort(result.rowids)
                assert np.array_equal(
                    result.rowids[order], want_rows
                ) and np.array_equal(result.values[order], want_vals), (
                    f"step {step}: query [{lo}, {hi}] diverged from oracle\n"
                    + (schedule.describe() if schedule else "")
                )
            elif op[0] == "update":
                _, row, value = op
                if not oracle.alive[row]:
                    continue
                db.update("t", "x", row, value)
                oracle.update(row, value)
            elif op[0] == "flush":
                db.flush_updates("t", "x")
            elif op[0] == "delete":
                _, lo, hi = op
                db.delete("t", "x", lo, hi)
                oracle.delete(lo, hi)

            audit = db.audit()
            assert audit.ok, (
                f"step {step} ({op[0]}): invariants violated\n"
                f"{audit.render()}"
                + (f"\nfaults:\n{schedule.describe()}" if schedule else "")
            )

        fired = schedule.faults_fired if schedule else 0

        # Recovery oracle: disarmed, one maintenance cycle restores the
        # budget and clears the debt spill failures may have left.
        substrate.schedule = None
        store.maintenance(db.cost)
        assert store.governor.debt == 0, (
            f"debt {store.governor.debt} survived a fault-free "
            "maintenance cycle"
        )
        assert store.hot_count() <= hot_budget
        audit = db.audit()
        assert audit.ok, f"post-recovery audit failed\n{audit.render()}"
        for op in ops:
            if op[0] != "query":
                continue
            _, lo, hi = op
            result = db.query("t", "x", lo, hi)
            want_rows, want_vals = oracle.query(lo, hi)
            order = np.argsort(result.rowids)
            assert np.array_equal(result.rowids[order], want_rows)
            assert np.array_equal(result.values[order], want_vals)
        return fired, db.tier_status()["t.x"]


OPS_STRATEGY = st.lists(
    st.one_of(
        st.tuples(
            st.just("query"),
            st.integers(0, DOMAIN // 2),
            st.integers(DOMAIN // 2, DOMAIN),
        ),
        st.tuples(
            st.just("update"),
            st.integers(0, NUM_ROWS - 1),
            st.integers(0, DOMAIN),
        ),
        st.tuples(st.just("flush")),
        st.tuples(
            st.just("delete"),
            st.integers(0, DOMAIN // 4),
            st.integers(DOMAIN // 4, DOMAIN // 2),
        ),
    ),
    min_size=1,
    max_size=12,
)


class TestSpillFaultProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=OPS_STRATEGY,
        schedule_seed=st.integers(0, 2**32 - 1),
        hot_budget=st.integers(1, NUM_PAGES),
    )
    def test_spill_faults_never_corrupt_results(
        self, ops, schedule_seed, hot_budget
    ):
        """∀ op sequences, ∀ spill-fault schedules, ∀ budgets: audits
        pass, results match, recovery converges."""
        _run_session(
            ops,
            _spill_schedule(schedule_seed),
            data_seed=1,
            hot_budget=hot_budget,
        )


class TestSpillScheduleSweep:
    def test_bulk_seeded_schedules(self):
        """≥200 seeded spill-fault schedules (REPRO_FUZZ_SCHEDULES)
        survive with per-step audits and the end-of-session recovery
        oracle — and the sweep genuinely exercises the fault paths."""
        total_fired = 0
        fallbacks = 0
        spill_failures = 0
        for i in range(FUZZ_SCHEDULES):
            seed = derive_seed(20_000 + i)
            rng = np.random.default_rng(seed)
            ops = _generated_ops(rng, 8)
            fired, status = _run_session(
                ops, _spill_schedule(seed), data_seed=seed
            )
            total_fired += fired
            fallbacks += status["read_fallbacks"]
            spill_failures += status["spill_failures"]
        assert total_fired >= FUZZ_SCHEDULES // 4, (
            f"only {total_fired} faults fired across {FUZZ_SCHEDULES} "
            "schedules - the schedule generator is too tame"
        )
        assert fallbacks > 0, "no cold read ever fell back to the resident copy"
        assert spill_failures > 0, "no spill write ever failed permanently"

    def test_sweep_is_deterministic(self):
        """Replaying one sweep entry fires the identical fault journal."""
        seed = derive_seed(20_007)
        journals = []
        for _ in range(2):
            rng = np.random.default_rng(seed)
            ops = _generated_ops(rng, 8)
            schedule = _spill_schedule(seed)
            _run_session(ops, schedule, data_seed=seed)
            journals.append(
                [(f.op, f.kind, f.call_index, f.rule) for f in schedule.journal]
            )
        assert journals[0] == journals[1]


def _ledger_of(substrate, ops, seed, tiering=None):
    """The cost-ledger snapshot of one fixed session on ``substrate``."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
    oracle = Oracle(values)
    with AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=substrate,
        tiering=tiering,
    ) as db:
        db.create_table("t", {"x": values})
        for op in ops:
            if op[0] == "query":
                db.query("t", "x", op[1], op[2])
            elif op[0] == "update":
                if not oracle.alive[op[1]]:
                    continue
                db.update("t", "x", op[1], op[2])
                oracle.update(op[1], op[2])
            elif op[0] == "flush":
                db.flush_updates("t", "x")
            elif op[0] == "delete":
                db.delete("t", "x", op[1], op[2])
                oracle.delete(op[1], op[2])
        return db.cost.ledger.snapshot()


class TestUntieredCostBitIdentity:
    """Disarmed tiering is invisible on the cost ledger — fuzz-enforced."""

    def test_untiered_session_matches_bare_substrate(self):
        """An untiered session with a cold-fault schedule armed is
        bit-identical to running on the bare substrate: no tier code
        runs, so the schedule's cold rules are never even consulted."""
        seed = derive_seed(5)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 12)

        bare = _ledger_of(make_substrate("simulated"), ops, seed)
        faulty = FaultySubstrate(make_substrate("simulated"))
        faulty.schedule = _spill_schedule(seed)
        armed = _ledger_of(faulty, ops, seed)
        assert armed == bare
        assert faulty.schedule.faults_fired == 0

    def test_untiered_ledger_carries_no_tier_counters(self):
        """Untiered sessions never count a single tier operation."""
        seed = derive_seed(5)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 12)
        _, counters = _ledger_of(make_substrate("simulated"), ops, seed)
        tier_keys = [
            k
            for k in counters
            if "cold" in k or "tier" in k or "promot" in k
        ]
        assert tier_keys == []

    @settings(max_examples=15, deadline=None)
    @given(data_seed=st.integers(0, 2**32 - 1))
    def test_untiered_cost_is_deterministic(self, data_seed):
        """∀ seeds: two identical untiered sessions charge identical
        ledgers (the baseline the bit-identity contract rests on)."""
        rng = np.random.default_rng(data_seed)
        ops = _generated_ops(rng, 8)
        first = _ledger_of(make_substrate("simulated"), ops, data_seed)
        second = _ledger_of(make_substrate("simulated"), ops, data_seed)
        assert first == second

    def test_tiered_session_does_charge_tier_costs(self):
        """The contrast case: arming tiering shows up on the ledger."""
        seed = derive_seed(5)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 12)
        _, counters = _ledger_of(
            make_substrate("simulated"),
            ops,
            seed,
            tiering=TierConfig(hot_budget=2),
        )
        assert counters.get("cold_page_writes", 0) > 0
        assert counters.get("cold_page_reads", 0) > 0

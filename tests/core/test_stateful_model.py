"""Model-based stateful testing of the adaptive storage layer.

A hypothesis state machine interleaves range queries, point updates,
batch flushes and snapshots against one column, comparing every
observable result with a plain numpy model.  This is the strongest
correctness net in the suite: any divergence between the fused
storage/indexing design and a naive array would surface here.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig, RoutingMode
from repro.core.snapshot import SnapshotManager
from repro.storage.updates import UpdateBatch, UpdateRecord
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column

NUM_PAGES = 8
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE
DOMAIN = 10_000


class AdaptiveLayerMachine(RuleBasedStateMachine):
    """Queries, updates, flushes and snapshots vs a numpy model."""

    @initialize(
        seed=st.integers(0, 2**16),
        mode=st.sampled_from(list(RoutingMode)),
    )
    def setup(self, seed, mode):
        rng = np.random.default_rng(seed)
        self.model = rng.integers(0, DOMAIN, NUM_ROWS)
        self.column = build_column(self.model.copy())
        self.layer = AdaptiveStorageLayer(
            self.column, AdaptiveConfig(max_views=6, mode=mode)
        )
        self.manager = SnapshotManager(self.column)
        self.pending = UpdateBatch()
        self.snapshots = []  # (snapshot, frozen model)

    @rule(lo=st.integers(0, DOMAIN), width=st.integers(0, DOMAIN // 2))
    def query(self, lo, width):
        result = self.layer.answer_query(lo, lo + width)
        expected = np.nonzero((self.model >= lo) & (self.model <= lo + width))[0]
        assert np.array_equal(np.sort(result.rowids), expected)

    @rule(row=st.integers(0, NUM_ROWS - 1), value=st.integers(0, DOMAIN))
    def update(self, row, value):
        old = self.column.write(row, value)
        assert old == self.model[row]
        self.pending.append(UpdateRecord(row=row, old=old, new=value))
        self.model[row] = value

    @precondition(lambda self: len(self.pending) > 0)
    @rule()
    def flush(self):
        self.layer.apply_updates(self.pending)
        self.pending = UpdateBatch()

    @rule()
    def snapshot(self):
        if len(self.snapshots) < 3:
            self.snapshots.append(
                (self.manager.create_snapshot(), self.model.copy())
            )

    @precondition(lambda self: self.snapshots)
    @rule(lo=st.integers(0, DOMAIN), width=st.integers(0, DOMAIN // 2))
    def snapshot_scan(self, lo, width):
        snapshot, frozen = self.snapshots[0]
        rowids, values = snapshot.scan(lo, lo + width)
        expected = np.nonzero((frozen >= lo) & (frozen <= lo + width))[0]
        assert np.array_equal(np.sort(rowids), expected)

    @precondition(lambda self: self.snapshots)
    @rule()
    def release_snapshot(self):
        snapshot, _ = self.snapshots.pop()
        snapshot.release()

    @invariant()
    def views_keep_coverage_invariant(self):
        """After pending updates are flushed, every partial view maps
        every page holding an in-range value."""
        if not hasattr(self, "layer") or len(self.pending) > 0:
            return  # stale views are expected until the next flush
        for view in self.layer.view_index.partial_views:
            required = set(
                self.column.pages_with_values_in(view.lo, view.hi).tolist()
            )
            mapped = set(view.mapped_fpages().tolist())
            assert required <= mapped

    def teardown(self):
        if hasattr(self, "manager"):
            self.manager.close()
        if hasattr(self, "layer"):
            self.layer.shutdown()


AdaptiveLayerMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestAdaptiveLayerStateful = AdaptiveLayerMachine.TestCase

"""Unit tests for query routing over selected views."""

import numpy as np
import pytest

from repro.core.routing import scan_views
from repro.core.view import VirtualView
from repro.vm.constants import MAX_VALUE, MIN_VALUE, VALUES_PER_PAGE

from ..conftest import build_column, reference_rows, uniform_column


def banded_column(num_pages=10, band=100):
    """Page p holds values in [p*band, p*band + band/2]: fully clustered."""
    pages = []
    rng = np.random.default_rng(1)
    for p in range(num_pages):
        pages.append(rng.integers(p * band, p * band + band // 2, VALUES_PER_PAGE))
    return build_column(np.concatenate(pages))


def view_over(column, lo, hi):
    """A correctly populated partial view for [lo, hi]."""
    view = VirtualView(column, lo, hi)
    for page in column.pages_with_values_in(lo, hi).tolist():
        view.add_page(page)
    return view


class TestScanViewsSingle:
    def test_full_view_answers_anything(self):
        col = uniform_column(num_pages=8)
        full = VirtualView.full_view(col)
        routed = scan_views(col, [full], 100, 5000)
        expected = reference_rows(col.values(), 100, 5000)
        assert np.array_equal(np.sort(routed.rowids), expected)
        assert routed.pages_scanned == 8
        assert routed.views_used == 1

    def test_partial_view_scans_fewer_pages(self):
        col = banded_column()
        view = view_over(col, 200, 399)
        routed = scan_views(col, [view], 200, 399)
        assert routed.pages_scanned < col.num_pages
        expected = reference_rows(col.values(), 200, 399)
        assert np.array_equal(np.sort(routed.rowids), expected)

    def test_views_must_cover_range(self):
        col = banded_column()
        view = view_over(col, 200, 399)
        with pytest.raises(ValueError):
            scan_views(col, [view], 100, 399)

    def test_empty_view_list_rejected(self):
        col = banded_column()
        with pytest.raises(ValueError):
            scan_views(col, [], 0, 10)


class TestScanViewsMulti:
    def test_union_answers_query(self):
        col = banded_column()
        a = view_over(col, 100, 299)
        b = view_over(col, 300, 499)
        routed = scan_views(col, [a, b], 150, 450)
        expected = reference_rows(col.values(), 150, 450)
        assert np.array_equal(np.sort(routed.rowids), expected)
        assert routed.views_used == 2

    def test_shared_pages_scanned_once(self):
        col = banded_column()
        a = view_over(col, 100, 399)
        b = view_over(col, 300, 499)  # overlaps a on pages of [300, 399]
        shared = set(a.mapped_fpages().tolist()) & set(b.mapped_fpages().tolist())
        assert shared, "test requires overlapping views"
        routed = scan_views(col, [a, b], 150, 450)
        total_pages = len(
            set(a.mapped_fpages().tolist()) | set(b.mapped_fpages().tolist())
        )
        assert routed.pages_scanned == total_pages
        # results still correct (no duplicates from double scanning)
        expected = reference_rows(col.values(), 150, 450)
        assert np.array_equal(np.sort(routed.rowids), expected)

    def test_duplicate_scan_would_break_results(self):
        """Negative control: without dedup, shared pages would duplicate
        rows — the bitvector exists for exactly this reason."""
        col = banded_column()
        a = view_over(col, 100, 399)
        b = view_over(col, 300, 499)
        routed = scan_views(col, [a, b], 150, 450)
        assert len(routed.rowids.tolist()) == len(set(routed.rowids.tolist()))


class TestExtendedRange:
    def test_extension_bounded_by_observed_values(self):
        col = banded_column()  # page p: values in [100p, 100p+50)
        full = VirtualView.full_view(col)
        routed = scan_views(col, [full], 210, 240)
        # values below 210 on non-qualifying pages: up to 149 (page 1);
        # page 2 itself qualifies (its low values are < 210 but the page
        # holds qualifying values too, so it does not constrain)
        assert routed.extended_lo <= 210
        assert routed.extended_hi >= 240
        # no value in (extended range) lives outside qualifying pages
        values = col.values()
        in_range = reference_rows(values, routed.extended_lo, routed.extended_hi)
        qualifying = set(routed.qualifying_fpages.tolist())
        pages_of_rows = set((in_range // VALUES_PER_PAGE).tolist())
        assert pages_of_rows <= qualifying

    def test_extension_starts_from_covered_range(self):
        col = banded_column()
        a = view_over(col, 200, 399)
        routed = scan_views(col, [a], 250, 350)
        # extension cannot exceed the view's own covered range
        assert routed.extended_lo >= 200
        assert routed.extended_hi <= 399

    def test_full_view_extension_can_reach_infinity(self):
        """If no values exist outside the query range, the extension
        covers the whole domain."""
        col = build_column(np.full(VALUES_PER_PAGE * 2, 500))
        full = VirtualView.full_view(col)
        routed = scan_views(col, [full], 400, 600)
        assert routed.extended_lo == MIN_VALUE
        assert routed.extended_hi == MAX_VALUE

    def test_qualifying_pages_in_scan_order(self):
        col = banded_column()
        full = VirtualView.full_view(col)
        routed = scan_views(col, [full], 210, 440)
        assert routed.qualifying_fpages.tolist() == sorted(
            routed.qualifying_fpages.tolist()
        )


class TestCostAccounting:
    def test_multi_view_charges_bitvector(self):
        col = banded_column()
        a = view_over(col, 100, 299)
        b = view_over(col, 300, 499)
        before = col.mapper.cost.ledger.counter("bitvector_words_scanned")
        scan_views(col, [a, b], 150, 450)
        assert col.mapper.cost.ledger.counter("bitvector_words_scanned") > before

    def test_single_view_skips_bitvector(self):
        col = banded_column()
        full = VirtualView.full_view(col)
        before = col.mapper.cost.ledger.counter("bitvector_words_scanned")
        scan_views(col, [full], 0, 100)
        assert col.mapper.cost.ledger.counter("bitvector_words_scanned") == before

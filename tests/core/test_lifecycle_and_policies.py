"""Tests for the view lifecycle journal, auto-flush and stale-view safety."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.core.stats import ViewEvent
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, reference_rows


def clustered_values(num_pages=16, band=1000):
    return np.repeat(np.arange(num_pages) * band, VALUES_PER_PAGE)


class TestLifecycleJournal:
    def test_insert_recorded(self):
        layer = AdaptiveStorageLayer(build_column(clustered_values()))
        layer.answer_query(3000, 3999)
        history = layer.view_index.history
        assert len(history) == 1
        event = history[0]
        assert event.event is ViewEvent.INSERTED
        assert event.sequence == 1
        assert event.candidate_pages == 1
        assert event.lo <= 3000 and event.hi >= 3999

    def test_discard_full_recorded_with_pages(self):
        layer = AdaptiveStorageLayer(build_column(clustered_values()))
        layer.answer_query(0, 10**9)
        event = layer.view_index.history[0]
        assert event.event is ViewEvent.DISCARDED_FULL
        assert event.candidate_pages == 16  # recorded before destruction

    def test_subset_discard_references_other_view(self):
        layer = AdaptiveStorageLayer(build_column(clustered_values()))
        layer.answer_query(3000, 3999)
        layer.answer_query(3000, 3999)
        event = layer.view_index.history[1]
        assert event.event is ViewEvent.DISCARDED_SUBSET
        assert event.other_range is not None
        assert event.other_pages == 1

    def test_replacement_references_replaced_view(self):
        from repro.core.view import VirtualView
        from repro.core.view_index import ViewIndex

        column = build_column(clustered_values())
        index = ViewIndex(column, AdaptiveConfig(max_views=10))
        existing = VirtualView(column, 3000, 3999)
        existing.add_page(3)
        index.insert(existing)
        candidate = VirtualView(column, 2500, 4500)
        candidate.add_page(3)
        assert index.consider_candidate(candidate) is ViewEvent.REPLACED
        replaced = index.history[-1]
        assert replaced.event is ViewEvent.REPLACED
        assert replaced.other_range == (3000, 3999)
        assert replaced.other_pages == 1

    def test_limit_reached_journaled(self):
        from repro.core.view import VirtualView
        from repro.core.view_index import ViewIndex

        column = build_column(clustered_values())
        index = ViewIndex(column, AdaptiveConfig(max_views=0))
        candidate = VirtualView(column, 0, 10)
        candidate.add_page(0)
        assert index.consider_candidate(candidate) is ViewEvent.LIMIT_REACHED
        event = index.history[-1]
        assert event.event is ViewEvent.LIMIT_REACHED
        assert event.candidate_pages == 1  # recorded before destruction

    def test_no_journal_entry_once_generation_stopped(self):
        """After the limit stops generation, queries build no candidate
        and therefore add nothing to the journal."""
        layer = AdaptiveStorageLayer(
            build_column(clustered_values()), AdaptiveConfig(max_views=1)
        )
        layer.answer_query(1000, 1999)
        layer.answer_query(5000, 5999)
        events = [e.event for e in layer.view_index.history]
        assert events == [ViewEvent.INSERTED]

    def test_describe_lines(self):
        layer = AdaptiveStorageLayer(build_column(clustered_values()))
        layer.answer_query(3000, 3999)
        layer.answer_query(3000, 3999)
        lines = [e.describe() for e in layer.view_index.history]
        assert lines[0].startswith("#1 candidate v[")
        assert "inserted" in lines[0]
        assert "vs v[" in lines[1]


class TestAutoFlush:
    def make_db(self, threshold):
        db = AdaptiveDatabase(
            AdaptiveConfig(max_views=5), auto_flush_threshold=threshold
        )
        db.create_table("t", {"x": clustered_values()})
        return db

    def test_threshold_triggers_flush(self):
        db = self.make_db(threshold=3)
        db.query("t", "x", 3000, 3999)  # create a view
        for i in range(3):
            db.update("t", "x", i, 3500 + i)
        # the third update crossed the threshold: log drained, view aligned
        assert len(db.table("t").pending_updates("x")) == 0
        view = db.layer("t", "x").view_index.partial_views[0]
        assert view.contains_page(0)
        db.close()

    def test_below_threshold_keeps_pending(self):
        db = self.make_db(threshold=10)
        db.update("t", "x", 0, 1)
        assert len(db.table("t").pending_updates("x")) == 1
        db.close()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveDatabase(auto_flush_threshold=0)

    def test_disabled_by_default(self):
        db = AdaptiveDatabase()
        db.create_table("t", {"x": clustered_values()})
        for i in range(50):
            db.update("t", "x", i, i)
        assert len(db.table("t").pending_updates("x")) == 50
        db.close()


class TestStaleViewSafety:
    def test_query_aligns_pending_updates_first(self):
        """A query right after updates — without an explicit flush —
        must still see every row (views self-heal before routing)."""
        db = AdaptiveDatabase(AdaptiveConfig(max_views=5))
        values = clustered_values()
        db.create_table("t", {"x": values})
        db.query("t", "x", 3000, 3999)  # view over page 3 only
        # move an out-of-range row into the view's range, NO flush
        db.update("t", "x", 0, 3333)
        result = db.query("t", "x", 3000, 3999)
        column = db.table("t").column("x")
        expected = reference_rows(column.values(), 3000, 3999)
        assert np.array_equal(np.sort(result.rowids), expected)
        assert 0 in result.rowids.tolist()
        # the pending log was drained by the query
        assert len(db.table("t").pending_updates("x")) == 0
        db.close()

    def test_query_engine_aligns_pending_updates(self):
        from repro.core.query import QueryEngine
        from repro.storage.table import Catalog
        from repro.vm.cost import CostModel
        from repro.vm.physical import PhysicalMemory

        catalog = Catalog(PhysicalMemory(cost=CostModel()))
        table = catalog.create_table("t", {"x": clustered_values()})
        engine = QueryEngine(table, AdaptiveConfig(max_views=5))
        engine.select("x", 3000, 3999)
        table.update("x", 0, 3333)
        result = engine.select("x", 3000, 3999)
        expected = reference_rows(table.column("x").values(), 3000, 3999)
        assert np.array_equal(np.sort(result.rowids), expected)
        engine.close()

"""Unit tests for the LRU view-eviction policy (extension)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig, EvictionPolicy
from repro.core.stats import ViewEvent
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, reference_rows


def clustered_column(num_pages=24, band=1000):
    return build_column(np.repeat(np.arange(num_pages) * band, VALUES_PER_PAGE))


def lru_layer(max_views=2):
    return AdaptiveStorageLayer(
        clustered_column(),
        AdaptiveConfig(max_views=max_views, eviction=EvictionPolicy.LRU),
    )


class TestLruEviction:
    def test_generation_never_stops(self):
        layer = lru_layer(max_views=2)
        for band in (1, 5, 9, 13, 17):
            layer.answer_query(band * 1000, band * 1000 + 999)
        assert not layer.view_index.generation_stopped
        assert layer.view_index.num_partials == 2

    def test_least_recently_used_is_evicted(self):
        layer = lru_layer(max_views=2)
        layer.answer_query(1000, 1999)   # view A
        layer.answer_query(5000, 5999)   # view B
        layer.answer_query(1000, 1999)   # touch A (B becomes LRU)
        layer.answer_query(9000, 9999)   # C arrives: B must go
        ranges = [
            (v.lo, v.hi) for v in layer.view_index.partial_views
        ]
        assert any(lo <= 1000 <= hi for lo, hi in ranges)   # A survived
        assert not any(lo <= 5000 <= hi for lo, hi in ranges)  # B evicted

    def test_eviction_event_journaled(self):
        layer = lru_layer(max_views=1)
        layer.answer_query(1000, 1999)
        layer.answer_query(5000, 5999)
        events = [e.event for e in layer.view_index.history]
        assert events == [ViewEvent.INSERTED, ViewEvent.EVICTED_LRU]
        evicted = layer.view_index.history[-1]
        assert evicted.other_range is not None

    def test_evicted_view_is_destroyed(self):
        layer = lru_layer(max_views=1)
        layer.answer_query(1000, 1999)
        victim = layer.view_index.partial_views[0]
        base = victim.base_vpn
        layer.answer_query(5000, 5999)
        assert not layer.column.mapper.address_space.is_mapped(base)

    def test_correctness_under_churn(self):
        layer = lru_layer(max_views=2)
        values = layer.column.values()
        rng = np.random.default_rng(3)
        for _ in range(20):
            lo = int(rng.integers(0, 20_000))
            hi = lo + int(rng.integers(100, 3_000))
            result = layer.answer_query(lo, hi)
            expected = reference_rows(values, lo, hi)
            assert np.array_equal(np.sort(result.rowids), expected)

    def test_stop_policy_unchanged_by_default(self):
        layer = AdaptiveStorageLayer(
            clustered_column(), AdaptiveConfig(max_views=1)
        )
        layer.answer_query(1000, 1999)
        layer.answer_query(5000, 5999)
        assert layer.view_index.generation_stopped
        assert layer.view_index.num_partials == 1


class TestDriftWithEviction:
    def test_lru_beats_stop_under_drift(self):
        """Under a drifting hotspot, a tight limit with LRU eviction
        outperforms the same limit with the paper's stop policy."""
        from repro.bench.harness import fresh_column, run_adaptive_sequence
        from repro.workloads.distributions import sine
        from repro.workloads.queries import shifting_hotspot

        values = sine(512, seed=31)
        queries = shifting_hotspot(num_queries=80, selectivity=0.01, seed=31)
        results = {}
        for label, eviction in (
            ("stop", EvictionPolicy.STOP),
            ("lru", EvictionPolicy.LRU),
        ):
            layer = AdaptiveStorageLayer(
                fresh_column(values),
                AdaptiveConfig(max_views=8, eviction=eviction),
            )
            run = run_adaptive_sequence(layer, queries)
            results[label] = run.stats.accumulated_seconds
            layer.shutdown()
        assert results["lru"] < results["stop"]

"""Unit tests for the query layer (selection, projection, aggregation)."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.query import AggregateResult, QueryEngine, RecordSet
from repro.storage.table import Catalog
from repro.vm.cost import CostModel
from repro.vm.physical import PhysicalMemory

from ..conftest import reference_rows


@pytest.fixture
def table():
    catalog = Catalog(PhysicalMemory(capacity_bytes=256 * 1024**2, cost=CostModel()))
    rng = np.random.default_rng(3)
    n = 5110
    return catalog.create_table(
        "sales",
        {
            "amount": rng.integers(0, 100_000, n),
            "customer": rng.integers(0, 500, n),
            "region": rng.integers(0, 10, n),
        },
    )


@pytest.fixture
def engine(table):
    eng = QueryEngine(table, AdaptiveConfig(max_views=10))
    yield eng
    eng.close()


class TestSelect:
    def test_matches_reference(self, table, engine):
        result = engine.select("amount", 10_000, 20_000)
        expected = reference_rows(table.column("amount").values(), 10_000, 20_000)
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_layers_cached(self, engine):
        assert engine.layer("amount") is engine.layer("amount")
        assert engine.layer("amount") is not engine.layer("region")

    def test_adaptive_behaviour_carries_over(self, engine):
        engine.select("amount", 10_000, 20_000)
        assert engine.layer("amount").view_index.num_partials >= 0


class TestFetch:
    def test_projection_values_correct(self, table, engine):
        rowids = np.array([0, 100, 4_000])
        out = engine.fetch(rowids, ["customer", "region"])
        customer = table.column("customer")
        region = table.column("region")
        assert out["customer"].tolist() == [customer.read(int(r)) for r in rowids]
        assert out["region"].tolist() == [region.read(int(r)) for r in rowids]

    def test_empty_projection(self, engine):
        out = engine.fetch(np.array([], dtype=np.int64), ["customer"])
        assert out["customer"].size == 0

    def test_out_of_range_rowid_rejected(self, table, engine):
        with pytest.raises(IndexError):
            engine.fetch(np.array([table.num_rows]), ["customer"])
        with pytest.raises(IndexError):
            engine.fetch(np.array([-1]), ["customer"])

    def test_charges_random_accesses(self, table, engine):
        cost = table.column("customer").mapper.cost
        before = cost.ledger.counter("pages_accessed")
        engine.fetch(np.array([0, 1, 600]), ["customer"])
        # rows 0/1 share a page, row 600 is on another: 2 page accesses
        assert cost.ledger.counter("pages_accessed") == before + 2


class TestSelectRecords:
    def test_full_pipeline(self, table, engine):
        record_set = engine.select_records(
            "amount", 10_000, 20_000, project=["customer"]
        )
        assert set(record_set.columns) == {"amount", "customer"}
        assert len(record_set) == record_set.columns["customer"].size
        # spot-check one record against the raw table
        records = record_set.records()
        rowid, amount, customer = records[0]
        assert table.get_record(rowid)[0] == amount
        assert table.get_record(rowid)[1] == customer

    def test_filter_column_not_projected_twice(self, engine):
        record_set = engine.select_records(
            "amount", 0, 50_000, project=["amount", "region"]
        )
        assert set(record_set.columns) == {"amount", "region"}

    def test_records_sorted_by_rowid(self, engine):
        record_set = engine.select_records("amount", 0, 5_000, project=["region"])
        rows = [r[0] for r in record_set.records()]
        assert rows == sorted(rows)

    def test_empty_recordset(self, engine):
        record_set = engine.select_records("amount", -10, -1)
        assert len(record_set) == 0
        assert record_set.records() == []


class TestSelectConjunction:
    def test_matches_reference(self, table, engine):
        rows = engine.select_conjunction(
            {"amount": (10_000, 60_000), "customer": (0, 100)}
        )
        amount = table.column("amount").values()
        customer = table.column("customer").values()
        expected = np.nonzero(
            (amount >= 10_000)
            & (amount <= 60_000)
            & (customer >= 0)
            & (customer <= 100)
        )[0]
        assert np.array_equal(np.sort(rows), expected)

    def test_single_predicate(self, table, engine):
        rows = engine.select_conjunction({"amount": (0, 50_000)})
        expected = reference_rows(table.column("amount").values(), 0, 50_000)
        assert np.array_equal(np.sort(rows), expected)

    def test_disjoint_predicates_empty(self, engine):
        rows = engine.select_conjunction(
            {"amount": (0, 100_000), "customer": (-10, -1)}
        )
        assert rows.size == 0

    def test_empty_predicates_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.select_conjunction({})

    def test_three_way_conjunction(self, table, engine):
        rows = engine.select_conjunction(
            {
                "amount": (0, 80_000),
                "customer": (100, 400),
                "region": (0, 5),
            }
        )
        amount = table.column("amount").values()
        customer = table.column("customer").values()
        region = table.column("region").values()
        expected = np.nonzero(
            (amount <= 80_000)
            & (amount >= 0)
            & (customer >= 100)
            & (customer <= 400)
            & (region >= 0)
            & (region <= 5)
        )[0]
        assert np.array_equal(np.sort(rows), expected)


class TestAggregate:
    def test_matches_numpy(self, table, engine):
        agg = engine.aggregate("amount", 10_000, 20_000)
        values = table.column("amount").values()
        selected = values[(values >= 10_000) & (values <= 20_000)]
        assert agg.count == selected.size
        assert agg.total == int(selected.sum())
        assert agg.minimum == int(selected.min())
        assert agg.maximum == int(selected.max())
        assert agg.average == pytest.approx(selected.mean())

    def test_empty_range(self, engine):
        agg = engine.aggregate("amount", -100, -1)
        assert agg == AggregateResult(count=0, total=0, minimum=None, maximum=None)
        assert agg.average is None

    def test_repeated_aggregates_use_views(self, engine):
        first = engine.select("amount", 30_000, 40_000).stats.pages_scanned
        engine.aggregate("amount", 30_000, 40_000)
        second = engine.select("amount", 30_000, 40_000).stats.pages_scanned
        assert second <= first


class TestLifecycle:
    def test_context_manager(self, table):
        with QueryEngine(table) as engine:
            engine.select("amount", 0, 100)
        assert engine._layers == {}

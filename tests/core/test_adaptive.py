"""Unit and property tests for the adaptive storage layer (Listing 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig, RoutingMode
from repro.core.stats import ViewEvent
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, reference_rows, uniform_column


def clustered_column(num_pages=24, band=1000):
    rng = np.random.default_rng(2)
    parts = [
        rng.integers(p * band, p * band + band // 2, VALUES_PER_PAGE)
        for p in range(num_pages)
    ]
    return build_column(np.concatenate(parts))


def check_view_invariant(column, layer):
    """Every partial view must map every page holding a value within its
    covered range — the core correctness invariant of the design."""
    for view in layer.view_index.partial_views:
        required = set(column.pages_with_values_in(view.lo, view.hi).tolist())
        mapped = set(view.mapped_fpages().tolist())
        assert required <= mapped, (
            f"view [{view.lo}, {view.hi}] misses pages {required - mapped}"
        )


class TestQueryCorrectness:
    def test_first_query_equals_reference(self):
        col = uniform_column()
        layer = AdaptiveStorageLayer(col)
        result = layer.answer_query(100, 10_000)
        expected = reference_rows(col.values(), 100, 10_000)
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_inverted_range_rejected(self):
        layer = AdaptiveStorageLayer(uniform_column())
        with pytest.raises(ValueError):
            layer.answer_query(10, 5)

    def test_point_query(self):
        col = build_column(np.arange(VALUES_PER_PAGE * 4))
        layer = AdaptiveStorageLayer(col)
        result = layer.answer_query(777, 777)
        assert result.rowids.tolist() == [777]
        assert result.values.tolist() == [777]

    def test_no_hit_query(self):
        col = build_column(np.zeros(VALUES_PER_PAGE, dtype=np.int64))
        layer = AdaptiveStorageLayer(col)
        result = layer.answer_query(5, 10)
        assert len(result) == 0

    def test_repeated_queries_stay_correct(self):
        col = clustered_column()
        layer = AdaptiveStorageLayer(col, AdaptiveConfig(max_views=10))
        expected = reference_rows(col.values(), 3000, 5000)
        for _ in range(4):
            result = layer.answer_query(3000, 5000)
            assert np.array_equal(np.sort(result.rowids), expected)

    def test_query_between_write_and_flush_sees_the_write(self):
        """An unflushed write that moves a value *into* a view's range
        must still be found: the value may land on a page the stale
        view does not map, so the layer rescans dirty pages no routed
        view covers (regression found by the stateful model test)."""
        col = clustered_column()
        layer = AdaptiveStorageLayer(
            col, AdaptiveConfig(mode=RoutingMode.SINGLE)
        )
        layer.answer_query(3000, 5000)  # retains a partial view
        assert layer.view_index.num_partials == 1
        # Move a far-away row's value into the view's range; its page is
        # outside the view's page set and the batch is not yet flushed.
        row = col.num_rows - 1
        col.write(row, 4000)
        result = layer.answer_query(3000, 5000)
        expected = reference_rows(col.values(), 3000, 5000)
        assert row in result.rowids
        assert np.array_equal(np.sort(result.rowids), expected)


class TestAdaptivity:
    def test_view_created_for_selective_query(self):
        col = clustered_column()
        layer = AdaptiveStorageLayer(col)
        result = layer.answer_query(3000, 5000)
        assert result.stats.view_event is ViewEvent.INSERTED
        assert layer.view_index.num_partials == 1
        check_view_invariant(col, layer)

    def test_unselective_query_discards_candidate(self):
        col = clustered_column()
        layer = AdaptiveStorageLayer(col)
        result = layer.answer_query(0, 10**9)
        assert result.stats.view_event is ViewEvent.DISCARDED_FULL
        assert layer.view_index.num_partials == 0

    def test_repeat_query_uses_partial_view(self):
        col = clustered_column()
        layer = AdaptiveStorageLayer(col)
        first = layer.answer_query(3000, 5000)
        second = layer.answer_query(3000, 5000)
        assert second.stats.pages_scanned < first.stats.pages_scanned
        assert second.stats.pages_scanned < col.num_pages
        assert second.stats.sim_ns < first.stats.sim_ns

    def test_candidate_range_extension(self):
        """The created view covers [l'+1, u'-1], wider than the query."""
        col = clustered_column(band=1000)  # page p: [1000p, 1000p+500)
        layer = AdaptiveStorageLayer(col)
        layer.answer_query(3100, 3300)  # hits only page 3
        view = layer.view_index.partial_views[0]
        # page 2's max is < 2500, page 4's min is >= 4000: the view may
        # cover everything in between
        assert view.lo <= 2500
        assert view.hi >= 3999
        check_view_invariant(col, layer)

    def test_generation_stops_at_limit(self):
        col = clustered_column()
        layer = AdaptiveStorageLayer(col, AdaptiveConfig(max_views=2))
        layer.answer_query(1000, 1400)
        layer.answer_query(5000, 5400)
        assert layer.view_index.generation_stopped
        result = layer.answer_query(9000, 9400)
        assert result.stats.view_event is ViewEvent.NONE
        assert layer.view_index.num_partials == 2
        # queries still answered correctly from the static set
        expected = reference_rows(col.values(), 9000, 9400)
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_stats_populated(self):
        col = clustered_column()
        layer = AdaptiveStorageLayer(col)
        result = layer.answer_query(3000, 5000)
        stats = result.stats
        assert stats.lo == 3000 and stats.hi == 5000
        assert stats.pages_scanned == col.num_pages  # first query: full view
        assert stats.views_used == 1
        assert stats.result_rows == len(result)
        assert stats.sim_ns > 0
        assert stats.partial_views_after == 1

    def test_multi_view_mode_end_to_end(self):
        col = clustered_column()
        config = AdaptiveConfig(max_views=20, mode=RoutingMode.MULTI)
        layer = AdaptiveStorageLayer(col, config)
        layer.answer_query(1000, 4000)
        layer.answer_query(3500, 8000)
        result = layer.answer_query(2000, 7000)  # covered by the two views
        assert result.stats.views_used >= 2
        expected = reference_rows(col.values(), 2000, 7000)
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_background_mapping_mode(self):
        col = clustered_column()
        config = AdaptiveConfig(background_mapping=True)
        with AdaptiveStorageLayer(col, config) as layer:
            first = layer.answer_query(3000, 5000)
            assert first.stats.view_event is ViewEvent.INSERTED
            expected = reference_rows(col.values(), 3000, 5000)
            assert np.array_equal(np.sort(first.rowids), expected)
            second = layer.answer_query(3000, 5000)
            assert np.array_equal(np.sort(second.rowids), expected)
            check_view_invariant(col, layer)


class TestAgainstFullScanProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100),
        queries=st.lists(
            st.tuples(st.integers(0, 20_000), st.integers(0, 8_000)),
            min_size=1,
            max_size=12,
        ),
        mode=st.sampled_from([RoutingMode.SINGLE, RoutingMode.MULTI]),
    )
    def test_adaptive_always_matches_reference(self, seed, queries, mode):
        """Any query sequence in any mode returns exactly the reference
        result, and all views keep the coverage invariant."""
        col = clustered_column(num_pages=12, band=2000)
        layer = AdaptiveStorageLayer(
            col, AdaptiveConfig(max_views=5, mode=mode)
        )
        values = col.values()
        for lo, width in queries:
            hi = lo + width
            result = layer.answer_query(lo, hi)
            expected = reference_rows(values, lo, hi)
            assert np.array_equal(np.sort(result.rowids), expected)
        check_view_invariant(col, layer)

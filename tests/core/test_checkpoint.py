"""Unit tests for database checkpointing."""

import numpy as np
import pytest

from repro.core.checkpoint import load_database, save_database
from repro.core.config import AdaptiveConfig, RoutingMode
from repro.core.facade import AdaptiveDatabase

from ..conftest import reference_rows


@pytest.fixture
def db():
    database = AdaptiveDatabase(
        AdaptiveConfig(max_views=8, mode=RoutingMode.MULTI)
    )
    rng = np.random.default_rng(4)
    database.create_table(
        "t",
        {
            "a": np.sort(rng.integers(0, 100_000, 4088)),
            "b": rng.integers(0, 1_000, 4088),
        },
    )
    database.create_table("u", {"x": np.arange(1022)})
    yield database
    database.close()


def checkpoint_path(tmp_path):
    return str(tmp_path / "ckpt.npz")


class TestRoundtrip:
    def test_data_survives(self, db, tmp_path):
        path = checkpoint_path(tmp_path)
        save_database(db, path)
        loaded = load_database(path)
        for table_name in ("t", "u"):
            original = db.table(table_name)
            restored = loaded.table(table_name)
            assert restored.num_rows == original.num_rows
            for col in original.column_names:
                assert np.array_equal(
                    restored.column(col).values(), original.column(col).values()
                )
        loaded.close()

    def test_config_survives(self, db, tmp_path):
        path = checkpoint_path(tmp_path)
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.config == db.config
        loaded.close()

    def test_views_rebuilt_warm(self, db, tmp_path):
        db.query("t", "a", 10_000, 20_000)
        db.query("t", "a", 50_000, 60_000)
        views_before = [
            (v.lo, v.hi)
            for v in db.layer("t", "a").view_index.partial_views
        ]
        assert views_before, "setup must create views"

        path = checkpoint_path(tmp_path)
        save_database(db, path)
        loaded = load_database(path)
        index = loaded.layer("t", "a").view_index
        assert [(v.lo, v.hi) for v in index.partial_views] == views_before

        # warm views mean no full scan on the reloaded database
        result = loaded.query("t", "a", 10_000, 20_000)
        assert result.stats.pages_scanned < loaded.table("t").column("a").num_pages
        loaded.close()

    def test_rebuilt_views_are_correct(self, db, tmp_path):
        db.query("t", "a", 10_000, 20_000)
        path = checkpoint_path(tmp_path)
        save_database(db, path)
        loaded = load_database(path)
        values = loaded.table("t").column("a").values()
        result = loaded.query("t", "a", 12_000, 18_000)
        expected = reference_rows(values, 12_000, 18_000)
        assert np.array_equal(np.sort(result.rowids), expected)
        loaded.close()

    def test_generation_stop_survives(self, tmp_path):
        db = AdaptiveDatabase(AdaptiveConfig(max_views=1))
        db.create_table("t", {"a": np.sort(np.arange(2044) * 40)})
        db.query("t", "a", 100, 200)  # fills the single view slot
        assert db.layer("t", "a").view_index.generation_stopped
        path = checkpoint_path(tmp_path)
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.layer("t", "a").view_index.generation_stopped
        loaded.close()
        db.close()

    def test_unqueried_columns_need_no_layer(self, db, tmp_path):
        path = checkpoint_path(tmp_path)
        save_database(db, path)
        loaded = load_database(path)
        # column b was never queried: loading must not create a layer
        assert ("t", "b") not in loaded._layers
        loaded.close()

    def test_version_check(self, db, tmp_path):
        import json

        import numpy as np

        path = checkpoint_path(tmp_path)
        save_database(db, path)
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"].tobytes()))
        manifest["version"] = 999
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_database(path)

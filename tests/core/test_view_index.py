"""Unit tests for view selection and the candidate retention policy."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig, RoutingMode
from repro.core.stats import ViewEvent
from repro.core.view import VirtualView
from repro.core.view_index import ViewIndex

from ..conftest import uniform_column


@pytest.fixture
def column():
    return uniform_column(num_pages=32)


def make_view(column, lo, hi, pages):
    view = VirtualView(column, lo, hi)
    for page in pages:
        view.add_page(page)
    return view


def index_with(column, config=None):
    return ViewIndex(column, config or AdaptiveConfig(max_views=10))


class TestSingleSelection:
    def test_falls_back_to_full_view(self, column):
        index = index_with(column)
        views = index.get_optimal_views(0, 100)
        assert views == [index.full_view]

    def test_smallest_covering_view_wins(self, column):
        index = index_with(column)
        big = make_view(column, 0, 1000, [0, 1, 2, 3])
        small = make_view(column, 0, 2000, [5, 6])
        index.insert(big)
        index.insert(small)
        assert index.get_optimal_views(10, 500) == [small]

    def test_non_covering_views_ignored(self, column):
        index = index_with(column)
        index.insert(make_view(column, 0, 100, [1]))
        assert index.get_optimal_views(50, 150) == [index.full_view]

    def test_exact_range_covers(self, column):
        index = index_with(column)
        view = make_view(column, 50, 150, [1])
        index.insert(view)
        assert index.get_optimal_views(50, 150) == [view]


class TestMultiSelection:
    def config(self):
        return AdaptiveConfig(max_views=10, mode=RoutingMode.MULTI)

    def test_uses_all_overlapping_when_covering(self, column):
        index = index_with(column, self.config())
        a = make_view(column, 0, 60, [0])
        b = make_view(column, 50, 120, [1])
        c = make_view(column, 40, 80, [2])  # redundant but overlapping
        for v in (a, b, c):
            index.insert(v)
        selected = index.get_optimal_views(10, 110)
        assert set(selected) == {a, b, c}

    def test_gap_falls_back_to_single(self, column):
        index = index_with(column, self.config())
        index.insert(make_view(column, 0, 40, [0]))
        index.insert(make_view(column, 60, 100, [1]))
        # hole in (40, 60): conjunction cannot cover [10, 90]
        assert index.get_optimal_views(10, 90) == [index.full_view]

    def test_touching_ranges_cover(self, column):
        index = index_with(column, self.config())
        a = make_view(column, 0, 49, [0])
        b = make_view(column, 50, 100, [1])
        index.insert(a)
        index.insert(b)
        assert set(index.get_optimal_views(10, 90)) == {a, b}

    def test_non_overlapping_views_excluded(self, column):
        index = index_with(column, self.config())
        a = make_view(column, 0, 60, [0])
        b = make_view(column, 50, 120, [1])
        far = make_view(column, 500, 600, [2])
        for v in (a, b, far):
            index.insert(v)
        assert set(index.get_optimal_views(10, 110)) == {a, b}

    def test_single_partial_can_cover_alone(self, column):
        index = index_with(column, self.config())
        a = make_view(column, 0, 200, [0])
        index.insert(a)
        assert index.get_optimal_views(10, 110) == [a]


class TestRetention:
    def test_candidate_no_better_than_full_view_discarded(self, column):
        index = index_with(column)
        candidate = make_view(column, 0, 100, list(range(32)))
        assert index.consider_candidate(candidate) is ViewEvent.DISCARDED_FULL
        assert index.num_partials == 0

    def test_insert_when_novel(self, column):
        index = index_with(column)
        candidate = make_view(column, 0, 100, [1, 2])
        assert index.consider_candidate(candidate) is ViewEvent.INSERTED
        assert index.partial_views == [candidate]

    def test_subset_of_similar_size_discarded(self, column):
        index = index_with(column)
        existing = make_view(column, 0, 100, [1, 2, 3])
        index.insert(existing)
        candidate = make_view(column, 10, 90, [1, 2, 3])
        assert index.consider_candidate(candidate) is ViewEvent.DISCARDED_SUBSET
        assert index.partial_views == [existing]

    def test_subset_with_big_savings_inserted(self, column):
        index = index_with(column)
        index.insert(make_view(column, 0, 100, [1, 2, 3, 4, 5]))
        candidate = make_view(column, 10, 90, [1])
        assert index.consider_candidate(candidate) is ViewEvent.INSERTED

    def test_discard_tolerance_widens_discards(self, column):
        config = AdaptiveConfig(discard_tolerance=2, max_views=10)
        index = index_with(column, config)
        index.insert(make_view(column, 0, 100, [1, 2, 3]))
        # candidate saves 2 pages, but d=2 discards it anyway
        candidate = make_view(column, 10, 90, [1])
        assert index.consider_candidate(candidate) is ViewEvent.DISCARDED_SUBSET

    def test_superset_of_similar_size_replaces(self, column):
        index = index_with(column)
        existing = make_view(column, 10, 90, [1, 2])
        index.insert(existing)
        candidate = make_view(column, 0, 100, [1, 2])
        assert index.consider_candidate(candidate) is ViewEvent.REPLACED
        assert index.partial_views == [candidate]

    def test_superset_too_big_not_replacing(self, column):
        index = index_with(column)
        existing = make_view(column, 10, 90, [1])
        index.insert(existing)
        candidate = make_view(column, 0, 100, [1, 2, 3])
        assert index.consider_candidate(candidate) is ViewEvent.INSERTED
        assert existing in index.partial_views

    def test_replacement_tolerance_allows_growth(self, column):
        config = AdaptiveConfig(replacement_tolerance=2, max_views=10)
        index = index_with(column, config)
        existing = make_view(column, 10, 90, [1])
        index.insert(existing)
        candidate = make_view(column, 0, 100, [1, 2, 3])
        assert index.consider_candidate(candidate) is ViewEvent.REPLACED

    def test_limit_stops_generation(self, column):
        config = AdaptiveConfig(max_views=1)
        index = index_with(column, config)
        assert (
            index.consider_candidate(make_view(column, 0, 10, [1]))
            is ViewEvent.INSERTED
        )
        assert index.generation_stopped
        assert (
            index.consider_candidate(make_view(column, 20, 30, [2]))
            is ViewEvent.LIMIT_REACHED
        )
        assert index.num_partials == 1

    def test_zero_limit_means_no_views(self, column):
        config = AdaptiveConfig(max_views=0)
        index = index_with(column, config)
        assert (
            index.consider_candidate(make_view(column, 0, 10, [1]))
            is ViewEvent.LIMIT_REACHED
        )

    def test_discarded_candidate_is_destroyed(self, column):
        index = index_with(column)
        candidate = make_view(column, 0, 100, list(range(32)))
        base = candidate.base_vpn
        index.consider_candidate(candidate)
        assert not column.mapper.address_space.is_mapped(base)

    def test_replaced_view_is_destroyed(self, column):
        index = index_with(column)
        existing = make_view(column, 10, 90, [1, 2])
        index.insert(existing)
        base = existing.base_vpn
        index.consider_candidate(make_view(column, 0, 100, [1, 2]))
        assert not column.mapper.address_space.is_mapped(base)


class TestIndexManagement:
    def test_insert_full_view_rejected(self, column):
        index = index_with(column)
        with pytest.raises(ValueError):
            index.insert(VirtualView.full_view(column))

    def test_drop(self, column):
        index = index_with(column)
        view = make_view(column, 0, 10, [1])
        index.insert(view)
        index.drop(view)
        assert index.num_partials == 0

    def test_all_views(self, column):
        index = index_with(column)
        view = make_view(column, 0, 10, [1])
        index.insert(view)
        assert index.all_views() == [index.full_view, view]


class TestConfigValidation:
    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(discard_tolerance=-1)
        with pytest.raises(ValueError):
            AdaptiveConfig(replacement_tolerance=-1)
        with pytest.raises(ValueError):
            AdaptiveConfig(max_views=-1)

    def test_with_mode(self):
        config = AdaptiveConfig()
        multi = config.with_mode(RoutingMode.MULTI)
        assert multi.mode is RoutingMode.MULTI
        assert config.mode is RoutingMode.SINGLE

"""Unit tests for the hash-join operator."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.query import QueryEngine
from repro.storage.table import Catalog
from repro.vm.cost import CostModel
from repro.vm.physical import PhysicalMemory


@pytest.fixture
def engines():
    catalog = Catalog(PhysicalMemory(cost=CostModel()))
    rng = np.random.default_rng(7)
    orders = catalog.create_table(
        "orders",
        {
            "customer_id": rng.integers(0, 200, 3000),
            "amount": rng.integers(1, 10_000, 3000),
        },
    )
    customers = catalog.create_table(
        "customers",
        {
            "id": np.arange(200),
            "region": rng.integers(0, 5, 200),
        },
    )
    left = QueryEngine(orders, AdaptiveConfig(max_views=5))
    right = QueryEngine(customers, AdaptiveConfig(max_views=5))
    yield left, right
    left.close()
    right.close()


def reference_join(left_vals, right_vals, left_rows=None, right_rows=None):
    left_rows = left_rows if left_rows is not None else range(len(left_vals))
    right_rows = right_rows if right_rows is not None else range(len(right_vals))
    pairs = set()
    right_map = {}
    for row in right_rows:
        right_map.setdefault(right_vals[row], []).append(row)
    for row in left_rows:
        for match in right_map.get(left_vals[row], ()):
            pairs.add((row, match))
    return pairs


class TestHashJoin:
    def test_full_join_matches_reference(self, engines):
        left, right = engines
        pairs = left.hash_join(right, "customer_id", "id")
        expected = reference_join(
            left.table.column("customer_id").values().tolist(),
            right.table.column("id").values().tolist(),
        )
        assert {tuple(p) for p in pairs.tolist()} == expected
        assert pairs.shape[1] == 2

    def test_pair_orientation(self, engines):
        left, right = engines
        pairs = left.hash_join(right, "customer_id", "id")
        customer = left.table.column("customer_id")
        ids = right.table.column("id")
        for l_row, r_row in pairs[:50].tolist():
            assert customer.read(l_row) == ids.read(r_row)

    def test_filtered_join(self, engines):
        left, right = engines
        pairs = left.hash_join(
            right,
            "customer_id",
            "id",
            left_predicates={"amount": (5_000, 10_000)},
            right_predicates={"region": (0, 1)},
        )
        amount = left.table.column("amount").values()
        region = right.table.column("region").values()
        cust = left.table.column("customer_id").values().tolist()
        ids = right.table.column("id").values().tolist()
        left_rows = [i for i in range(len(cust)) if 5_000 <= amount[i] <= 10_000]
        right_rows = [i for i in range(len(ids)) if 0 <= region[i] <= 1]
        expected = reference_join(cust, ids, left_rows, right_rows)
        assert {tuple(p) for p in pairs.tolist()} == expected

    def test_empty_sides(self, engines):
        left, right = engines
        pairs = left.hash_join(
            right, "customer_id", "id",
            left_predicates={"amount": (-5, -1)},
        )
        assert pairs.shape == (0, 2)

    def test_self_join(self, engines):
        left, _ = engines
        pairs = left.hash_join(left, "customer_id", "customer_id")
        # every row joins at least with itself
        assert pairs.shape[0] >= left.table.num_rows
        self_pairs = {(i, i) for i in range(left.table.num_rows)}
        assert self_pairs <= {tuple(p) for p in pairs.tolist()}

    def test_join_uses_views_for_predicates(self, engines):
        left, right = engines
        left.hash_join(
            right, "customer_id", "id",
            left_predicates={"amount": (5_000, 10_000)},
        )
        # the amount predicate went through the adaptive layer
        assert "amount" in left._layers

"""Unit tests for cost-based multi-view routing (the paper's future work)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig, RoutingMode
from repro.core.view import VirtualView
from repro.core.view_index import ViewIndex
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, reference_rows


def banded_column(num_pages=32, band=100):
    values = np.repeat(np.arange(num_pages) * band, VALUES_PER_PAGE)
    return build_column(values)


def make_view(column, lo, hi, pages):
    view = VirtualView(column, lo, hi)
    for page in pages:
        view.add_page(page)
    return view


def cost_index(column):
    return ViewIndex(
        column, AdaptiveConfig(max_views=20, mode=RoutingMode.MULTI_COST)
    )


class TestSelection:
    def test_prefers_cheap_cover_over_fat_single_view(self):
        column = banded_column()
        index = cost_index(column)
        fat = make_view(column, 0, 1000, list(range(20)))  # covers alone, 20 pages
        a = make_view(column, 0, 500, [0, 1])
        b = make_view(column, 400, 1000, [2, 3])
        for view in (fat, a, b):
            index.insert(view)
        selected = index.get_optimal_views(100, 900)
        assert set(selected) == {a, b}

    def test_prefers_single_view_when_cheaper(self):
        column = banded_column()
        index = cost_index(column)
        lean = make_view(column, 0, 1000, [0])
        a = make_view(column, 0, 500, [1, 2, 3])
        b = make_view(column, 400, 1000, [4, 5, 6])
        for view in (lean, a, b):
            index.insert(view)
        selected = index.get_optimal_views(100, 900)
        assert selected == [lean]

    def test_shared_pages_counted_once_against_single_view(self):
        column = banded_column()
        index = cost_index(column)
        # a and b share pages 1 and 2: their cover scans 4 distinct pages,
        # cheaper than the 7-page single view even though each member
        # alone looks mediocre
        a = make_view(column, 0, 500, [0, 1, 2])
        b = make_view(column, 400, 1000, [1, 2, 3])
        single = make_view(column, 0, 1000, [4, 5, 6, 7, 8, 9, 10])
        for view in (a, b, single):
            index.insert(view)
        selected = index.get_optimal_views(100, 900)
        assert set(selected) == {a, b}

    def test_gap_falls_back_to_single_mode(self):
        column = banded_column()
        index = cost_index(column)
        index.insert(make_view(column, 0, 300, [0]))
        index.insert(make_view(column, 600, 1000, [1]))
        selected = index.get_optimal_views(100, 900)
        assert selected == [index.full_view]

    def test_no_partials_falls_back(self):
        column = banded_column()
        index = cost_index(column)
        assert index.get_optimal_views(0, 10) == [index.full_view]

    def test_greedy_picks_lowest_cost_per_coverage(self):
        column = banded_column()
        index = cost_index(column)
        # both start at 0; expensive reaches further but costs much more
        # per covered unit
        cheap = make_view(column, 0, 600, [0])
        expensive = make_view(column, 0, 800, list(range(1, 13)))
        tail = make_view(column, 500, 1000, [13])
        for view in (cheap, expensive, tail):
            index.insert(view)
        selected = index.get_optimal_views(0, 1000)
        assert set(selected) == {cheap, tail}


class TestEndToEnd:
    def test_correctness_matches_reference(self):
        column = banded_column()
        layer = AdaptiveStorageLayer(
            column, AdaptiveConfig(max_views=10, mode=RoutingMode.MULTI_COST)
        )
        values = column.values()
        for lo, hi in [(100, 900), (50, 450), (400, 1200), (100, 900)]:
            result = layer.answer_query(lo, hi)
            expected = reference_rows(values, lo, hi)
            assert np.array_equal(np.sort(result.rowids), expected)

    def test_scans_no_more_pages_than_naive_multi(self):
        """On the same view set, cost-based routing never scans more
        distinct pages than take-all-overlapping routing."""
        column = banded_column()
        naive = ViewIndex(column, AdaptiveConfig(mode=RoutingMode.MULTI))
        cost = cost_index(column)
        for index in (naive, cost):
            index.insert(make_view(column, 0, 500, [0, 1]))
            index.insert(make_view(column, 400, 1000, [2, 3]))
            index.insert(make_view(column, 0, 1000, list(range(4, 16))))

        def distinct_pages(views):
            return len({p for v in views for p in v.mapped_fpages().tolist()})

        naive_pages = distinct_pages(naive.get_optimal_views(100, 900))
        cost_pages = distinct_pages(cost.get_optimal_views(100, 900))
        assert cost_pages <= naive_pages

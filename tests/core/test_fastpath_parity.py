"""Property tests: the fast paths are observably identical to the
reference paths.

The fast-path layer (``repro.fastpath``) only changes *wall-clock*
behaviour; every simulated observable — query results, cost-ledger lane
totals and operation counters, and the maps-file line count — must be
bit-identical to the per-page reference implementation.  These tests run
the same randomized workload on two fresh stacks, one per mode, and
compare everything.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.bench.harness import fresh_column, make_update_batch
from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig, RoutingMode
from repro.core.scan import batch_scan
from repro.vm.procmaps import maps_line_count
from repro.workloads.distributions import linear, sine, sparse, uniform

DISTRIBUTIONS = {
    "uniform": uniform,
    "sine": sine,
    "linear": linear,
    "sparse": sparse,
}

#: Small column: 24 pages keeps each example fast while still exercising
#: multi-run coalescing, view replacement and page add/remove.
NUM_PAGES = 24

DOMAIN = (0, 100_000_000)

# One workload step: a range query, or an update batch followed by view
# alignment ("flush" of the pending updates into the partial views).
_STEP = st.one_of(
    st.tuples(
        st.just("query"),
        st.integers(DOMAIN[0], DOMAIN[1]),
        st.integers(DOMAIN[0], DOMAIN[1]),
    ),
    st.tuples(
        st.just("update"),
        st.integers(1, 40),
        st.integers(0, 2**16),
    ),
)


def _run_workload(dist_name: str, mode: RoutingMode, steps) -> dict:
    """Run one workload on a fresh stack; returns every observable."""
    values = DISTRIBUTIONS[dist_name](NUM_PAGES, seed=11)
    column = fresh_column(values, name="parity")
    config = AdaptiveConfig(mode=mode, max_views=4)
    layer = AdaptiveStorageLayer(column, config)
    queries = []
    maintenance = []
    for step in steps:
        if step[0] == "query":
            lo, hi = min(step[1], step[2]), max(step[1], step[2])
            result = layer.answer_query(lo, hi)
            queries.append(
                (
                    result.rowids.tolist(),
                    result.values.tolist(),
                    result.stats,
                )
            )
        else:
            _, count, seed = step
            batch = make_update_batch(column, count, *DOMAIN, seed=seed)
            stats = layer.apply_updates(batch)
            maintenance.append(stats)
    ledger = column.mapper.cost.ledger
    return {
        "queries": queries,
        "maintenance": maintenance,
        "lanes": ledger.lanes(),
        "counters": ledger.counters(),
        "maps_lines": maps_line_count(column.mapper.address_space),
    }


@pytest.mark.parametrize("dist_name", sorted(DISTRIBUTIONS))
@settings(max_examples=20, deadline=None)
@given(
    steps=st.lists(_STEP, max_size=8),
    mode=st.sampled_from(list(RoutingMode)),
)
def test_fast_paths_match_reference(dist_name, steps, mode):
    with fastpath.reference_paths():
        reference = _run_workload(dist_name, mode, steps)
    with fastpath.fast_paths():
        fast = _run_workload(dist_name, mode, steps)

    assert fast["queries"] == reference["queries"]
    assert fast["maintenance"] == reference["maintenance"]
    assert fast["lanes"] == reference["lanes"]
    assert fast["counters"] == reference["counters"]
    assert fast["maps_lines"] == reference["maps_lines"]


@pytest.mark.parametrize("dist_name", sorted(DISTRIBUTIONS))
@settings(max_examples=20, deadline=None)
@given(
    lo=st.integers(DOMAIN[0], DOMAIN[1]),
    width=st.integers(0, DOMAIN[1]),
    data=st.data(),
)
def test_batch_scan_results_identical(dist_name, lo, width, data):
    """Direct scan parity: identical ``BatchScanResult`` field by field."""
    hi = min(lo + width, DOMAIN[1])
    values = DISTRIBUTIONS[dist_name](NUM_PAGES, seed=5)
    fpages = data.draw(
        st.lists(
            st.integers(0, NUM_PAGES - 1), max_size=NUM_PAGES, unique=True
        )
    )

    results = []
    ledgers = []
    for ctx in (fastpath.reference_paths, fastpath.fast_paths):
        with ctx():
            column = fresh_column(values, name="scanparity")
            results.append(batch_scan(column, np.asarray(fpages), lo, hi))
            ledgers.append(column.mapper.cost.ledger)

    reference, fast = results
    for field in (
        "fpages",
        "rowids",
        "values",
        "page_qualifies",
        "max_below",
        "min_above",
    ):
        np.testing.assert_array_equal(
            getattr(fast, field), getattr(reference, field)
        )
    assert ledgers[1].lanes() == ledgers[0].lanes()
    assert ledgers[1].counters() == ledgers[0].counters()


def test_background_mapping_parity():
    """Lane totals agree even when mapping runs on the real thread."""
    values = sine(NUM_PAGES, seed=3)
    observed = {}
    for name, ctx in (
        ("reference", fastpath.reference_paths),
        ("fast", fastpath.fast_paths),
    ):
        with ctx():
            column = fresh_column(values, name="bg")
            config = AdaptiveConfig(background_mapping=True, max_views=4)
            with AdaptiveStorageLayer(column, config) as layer:
                totals = 0
                for lo, hi in [(0, 10_000_000), (5_000_000, 60_000_000)]:
                    totals += len(layer.answer_query(lo, hi))
            ledger = column.mapper.cost.ledger
            observed[name] = (totals, ledger.lanes(), ledger.counters())
    assert observed["fast"] == observed["reference"]

"""Unit tests for the offline view advisor."""

import numpy as np
import pytest

from repro.core.advisor import AdvisedView, ViewAdvisor
from repro.core.scan import batch_scan
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, reference_rows


def clustered_column(num_pages=32, band=1000):
    return build_column(np.repeat(np.arange(num_pages) * band, VALUES_PER_PAGE))


class TestMerge:
    def test_overlapping_ranges_merge(self):
        clusters = ViewAdvisor._merge([(0, 10), (5, 20), (40, 50)])
        assert clusters == [(0, 20, 2), (40, 50, 1)]

    def test_touching_ranges_merge(self):
        clusters = ViewAdvisor._merge([(0, 10), (11, 20)])
        assert clusters == [(0, 20, 2)]

    def test_disjoint_stay_separate(self):
        clusters = ViewAdvisor._merge([(0, 10), (12, 20)])
        assert len(clusters) == 2

    def test_contained_range(self):
        clusters = ViewAdvisor._merge([(0, 100), (10, 20)])
        assert clusters == [(0, 100, 2)]


class TestRecommend:
    def test_hot_cluster_ranks_first(self):
        column = clustered_column()
        advisor = ViewAdvisor(column)
        queries = [(3000, 3999)] * 10 + [(20_000, 20_999)]
        recommendations = advisor.recommend(queries, max_views=2)
        assert recommendations[0].lo == 3000
        assert recommendations[0].queries_covered == 10
        assert recommendations[0].benefit_pages > recommendations[1].benefit_pages

    def test_max_views_respected(self):
        column = clustered_column()
        advisor = ViewAdvisor(column)
        queries = [(i * 2000, i * 2000 + 100) for i in range(8)]
        assert len(advisor.recommend(queries, max_views=3)) == 3

    def test_empty_workload(self):
        advisor = ViewAdvisor(clustered_column())
        assert advisor.recommend([]) == []

    def test_invalid_max_views(self):
        advisor = ViewAdvisor(clustered_column())
        with pytest.raises(ValueError):
            advisor.recommend([(0, 1)], max_views=0)

    def test_wide_range_has_low_benefit(self):
        column = clustered_column()
        advisor = ViewAdvisor(column)
        narrow = advisor.recommend([(3000, 3999)], max_views=1)[0]
        wide = advisor.recommend([(0, 32_000)], max_views=1)[0]
        assert narrow.benefit_pages > wide.benefit_pages


class TestMaterialize:
    def test_materialized_views_are_correct(self):
        column = clustered_column()
        advisor = ViewAdvisor(column)
        recommendations = advisor.recommend(
            [(3000, 3999), (3100, 3500), (9000, 9999)], max_views=2
        )
        views = advisor.materialize(recommendations)
        values = column.values()
        for view in views:
            result = batch_scan(
                column, view.mapped_fpages(), view.lo, view.hi, charge=False
            )
            expected = reference_rows(values, view.lo, view.hi)
            assert np.array_equal(np.sort(result.rowids), expected)

    def test_advised_views_speed_up_repetitive_workload(self):
        """The advisor's static views beat full scans on the workload
        they were advised for (the offline counterpart of Figure 4)."""
        from repro.baselines.full_scan import FullScanBaseline

        workload = [(3000, 3999)] * 5 + [(9000, 9999)] * 5
        column_static = clustered_column()
        advisor = ViewAdvisor(column_static)
        views = advisor.materialize(advisor.recommend(workload, max_views=2))
        by_range = {(v.lo, v.hi): v for v in views}

        cost = column_static.mapper.cost
        with cost.region() as static_region:
            for lo, hi in workload:
                view = next(
                    v for v in views if v.lo <= lo and v.hi >= hi
                )
                batch_scan(column_static, view.mapped_fpages(), lo, hi)

        column_full = clustered_column()
        baseline = FullScanBaseline(column_full)
        with column_full.mapper.cost.region() as full_region:
            for lo, hi in workload:
                baseline.query(lo, hi)

        assert static_region.elapsed_ns() < full_region.elapsed_ns()

"""Unit and property tests for batch view alignment (Sections 2.4/2.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maintenance import align_partial_views, rebuild_partial_views
from repro.core.view import VirtualView
from repro.storage.updates import UpdateBatch, UpdateRecord
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, reference_rows


def banded_column(num_pages=12, band=1000):
    """Page p holds the constant value p * band (fully clustered)."""
    values = np.repeat(np.arange(num_pages) * band, VALUES_PER_PAGE)
    return build_column(values)


def aligned_view(column, lo, hi):
    view = VirtualView(column, lo, hi)
    for page in column.pages_with_values_in(lo, hi).tolist():
        view.add_page(page)
    return view


def apply_and_log(column, updates):
    """Write updates through the column and build the batch."""
    batch = UpdateBatch()
    for row, new in updates:
        old = column.write(row, new)
        batch.append(UpdateRecord(row=row, old=old, new=new))
    return batch


def check_invariant(column, views):
    for view in views:
        required = set(column.pages_with_values_in(view.lo, view.hi).tolist())
        mapped = set(view.mapped_fpages().tolist())
        assert required <= mapped


class TestCaseOne:
    """Case 1: page not indexed, updates bring a value into range."""

    def test_page_added(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)  # indexes only page 3
        assert view.mapped_fpages().tolist() == [3]
        batch = apply_and_log(col, [(0, 3500)])  # page 0 now holds 3500
        stats = align_partial_views(col, [view], batch)
        assert stats.pages_added == 1
        assert view.contains_page(0)
        check_invariant(col, [view])

    def test_irrelevant_update_ignored(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        batch = apply_and_log(col, [(0, 7777)])  # outside [3000, 3999]
        stats = align_partial_views(col, [view], batch)
        assert stats.pages_added == 0 and stats.pages_removed == 0
        assert not view.contains_page(0)


class TestCaseTwo:
    """Case 2: page indexed; decide whether it may be removed."""

    def test_new_value_in_range_keeps_page(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        row = 3 * VALUES_PER_PAGE
        batch = apply_and_log(col, [(row, 3500)])
        stats = align_partial_views(col, [view], batch)
        assert stats.pages_removed == 0
        assert view.contains_page(3)

    def test_old_outside_range_keeps_page_without_scan(self):
        """Updates that never touched the view's range cannot deindex."""
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        view.add_page(5)  # pretend page 5 also holds an in-range value
        col.write(5 * VALUES_PER_PAGE, 3500)  # make that true
        row = 5 * VALUES_PER_PAGE + 1
        batch = apply_and_log(col, [(row, 9999)])  # old=5000, new=9999
        before = col.mapper.cost.ledger.counter("pages_scanned")
        stats = align_partial_views(col, [view], batch)
        assert stats.pages_removed == 0
        assert view.contains_page(5)
        # no full page scan was needed for the decision
        assert col.mapper.cost.ledger.counter("pages_scanned") == before

    def test_last_in_range_value_removed_deindexes_page(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        # move ALL values of page 3 out of the range
        rows = [3 * VALUES_PER_PAGE + i for i in range(VALUES_PER_PAGE)]
        batch = apply_and_log(col, [(r, 50) for r in rows])
        stats = align_partial_views(col, [view], batch)
        assert stats.pages_removed == 1
        assert not view.contains_page(3)
        check_invariant(col, [view])

    def test_remaining_in_range_value_keeps_page(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        # overwrite one in-range value; 510 others remain in range
        row = 3 * VALUES_PER_PAGE
        batch = apply_and_log(col, [(row, 50)])
        before = col.mapper.cost.ledger.counter("pages_scanned")
        stats = align_partial_views(col, [view], batch)
        assert stats.pages_removed == 0
        assert view.contains_page(3)
        # the decision required a full page scan
        assert col.mapper.cost.ledger.counter("pages_scanned") == before + 1

    def test_removal_then_read_reuses_slot(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        rows = [3 * VALUES_PER_PAGE + i for i in range(VALUES_PER_PAGE)]
        batch = apply_and_log(col, [(r, 50) for r in rows])
        align_partial_views(col, [view], batch)
        # bring page 5 into range: the freed slot is reused
        batch2 = apply_and_log(col, [(5 * VALUES_PER_PAGE, 3100)])
        stats = align_partial_views(col, [view], batch2)
        assert stats.pages_added == 1
        assert view.contains_page(5)


class TestBatchSemantics:
    def test_compaction_net_noop(self):
        """A value leaving and re-entering the range in one batch must
        leave the view unchanged."""
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        row = 3 * VALUES_PER_PAGE
        batch = apply_and_log(col, [(row, 50), (row, 3000)])
        stats = align_partial_views(col, [view], batch)
        assert stats.pages_added == 0 and stats.pages_removed == 0
        assert view.contains_page(3)
        assert stats.compacted_size == 1

    def test_multiple_views_aligned_independently(self):
        col = banded_column()
        a = aligned_view(col, 3000, 3999)
        b = aligned_view(col, 5000, 5999)
        batch = apply_and_log(col, [(0, 3500), (VALUES_PER_PAGE, 5500)])
        stats = align_partial_views(col, [a, b], batch)
        assert stats.pages_added == 2
        assert a.contains_page(0) and not a.contains_page(1)
        assert b.contains_page(1) and not b.contains_page(0)
        check_invariant(col, [a, b])

    def test_full_views_skipped(self):
        col = banded_column()
        full = VirtualView.full_view(col)
        batch = apply_and_log(col, [(0, 1)])
        stats = align_partial_views(col, [full], batch)
        assert stats.pages_added == 0 and stats.pages_removed == 0

    def test_empty_batch(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        stats = align_partial_views(col, [view], UpdateBatch())
        assert stats.batch_size == 0
        assert stats.maps_lines > 0  # the maps file is still parsed once

    def test_stats_timing_split(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        batch = apply_and_log(col, [(0, 3500)])
        stats = align_partial_views(col, [view], batch)
        assert stats.parse_ns > 0
        assert stats.update_ns > 0
        assert stats.total_ns == pytest.approx(stats.parse_ns + stats.update_ns)

    def test_queries_correct_after_alignment(self):
        col = banded_column()
        view = aligned_view(col, 3000, 3999)
        rng = np.random.default_rng(5)
        updates = [
            (int(r), int(v))
            for r, v in zip(
                rng.integers(0, col.num_rows, 200),
                rng.integers(0, 12_000, 200),
            )
        ]
        batch = apply_and_log(col, updates)
        align_partial_views(col, [view], batch)
        check_invariant(col, [view])
        # scanning the view answers [3000, 3999] exactly
        from repro.core.scan import batch_scan

        result = batch_scan(col, view.mapped_fpages(), 3000, 3999, charge=False)
        expected = reference_rows(col.values(), 3000, 3999)
        assert np.array_equal(np.sort(result.rowids), expected)


class TestRebuild:
    def test_rebuild_produces_aligned_views(self):
        col = banded_column()
        full = VirtualView.full_view(col)
        ranges = [(1000, 1999), (4000, 6999)]
        views, elapsed = rebuild_partial_views(col, full, ranges)
        assert elapsed > 0
        assert [v.value_range for v in views] == ranges
        check_invariant(col, views)

    def test_rebuild_equals_incremental_alignment(self):
        """After any batch, rebuilding and incremental alignment must
        index the same pages per range."""
        col_inc = banded_column()
        col_rb = banded_column()
        ranges = [(2000, 2999), (5000, 7999)]
        views = [aligned_view(col_inc, lo, hi) for lo, hi in ranges]

        rng = np.random.default_rng(9)
        updates = [
            (int(r), int(v))
            for r, v in zip(
                rng.integers(0, col_inc.num_rows, 300),
                rng.integers(0, 12_000, 300),
            )
        ]
        batch = apply_and_log(col_inc, updates)
        for row, new in updates:
            col_rb.write(row, new)
        align_partial_views(col_inc, views, batch)
        full_rb = VirtualView.full_view(col_rb)
        rebuilt, _ = rebuild_partial_views(col_rb, full_rb, ranges)

        for incremental, fresh in zip(views, rebuilt):
            required = set(
                col_rb.pages_with_values_in(fresh.lo, fresh.hi).tolist()
            )
            assert set(fresh.mapped_fpages().tolist()) == required
            # incremental view may keep stale extra pages, but never
            # misses a required one
            assert required <= set(incremental.mapped_fpages().tolist())


@settings(max_examples=20, deadline=None)
@given(
    updates=st.lists(
        st.tuples(st.integers(0, 12 * VALUES_PER_PAGE - 1), st.integers(0, 12_000)),
        min_size=1,
        max_size=60,
    ),
    ranges=st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(1, 3_000)),
        min_size=1,
        max_size=3,
    ),
)
def test_alignment_invariant_property(updates, ranges):
    """After any update batch, every view still maps every page holding
    an in-range value (the coverage invariant)."""
    col = banded_column()
    views = [aligned_view(col, lo, lo + width) for lo, width in ranges]
    batch = apply_and_log(col, updates)
    align_partial_views(col, views, batch)
    check_invariant(col, views)

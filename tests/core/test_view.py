"""Unit tests for virtual views."""

import numpy as np
import pytest

from repro.core.view import VirtualView
from repro.vm.constants import MAX_VALUE, MIN_VALUE

from ..conftest import uniform_column


@pytest.fixture
def column():
    return uniform_column(num_pages=16)


class TestFullView:
    def test_maps_everything(self, column):
        view = VirtualView.full_view(column)
        assert view.is_full_view
        assert view.num_pages == 16
        assert view.value_range == (MIN_VALUE, MAX_VALUE)
        assert view.mapped_fpages().tolist() == list(range(16))
        assert view.contains_page(0) and view.contains_page(15)
        assert not view.contains_page(16)

    def test_single_mmap_call(self, column):
        before = column.mapper.cost.ledger.counter("mmap_calls")
        VirtualView.full_view(column)
        assert column.mapper.cost.ledger.counter("mmap_calls") == before + 1

    def test_mutations_rejected(self, column):
        view = VirtualView.full_view(column)
        with pytest.raises(RuntimeError):
            view.add_page(0)
        with pytest.raises(RuntimeError):
            view.remove_page(0)
        with pytest.raises(RuntimeError):
            view.plan_run([0])


class TestPartialView:
    def test_starts_empty(self, column):
        view = VirtualView(column, 10, 20)
        assert view.num_pages == 0
        assert view.value_range == (10, 20)
        assert view.mapped_fpages().size == 0

    def test_inverted_range_rejected(self, column):
        with pytest.raises(ValueError):
            VirtualView(column, 20, 10)

    def test_reservation_spans_whole_column(self, column):
        view = VirtualView(column, 0, 1)
        asp = column.mapper.address_space
        assert asp.is_mapped(view.base_vpn)
        assert asp.is_mapped(view.base_vpn + column.num_pages - 1)
        assert asp.translate(view.base_vpn) is None  # anonymous

    def test_add_page_maps_and_translates(self, column):
        view = VirtualView(column, 0, 100)
        view.add_page(7)
        assert view.contains_page(7)
        assert view.num_pages == 1
        assert column.mapper.translate(view.vpn_of(7)) == (column.file, 7)

    def test_add_duplicate_rejected(self, column):
        view = VirtualView(column, 0, 100)
        view.add_page(7)
        with pytest.raises(ValueError):
            view.add_page(7)

    def test_add_bad_page_rejected(self, column):
        view = VirtualView(column, 0, 100)
        from repro.vm.errors import FileError

        with pytest.raises(FileError):
            view.add_page(99)

    def test_remove_page(self, column):
        view = VirtualView(column, 0, 100)
        view.add_page(3)
        view.add_page(4)
        view.remove_page(3)
        assert not view.contains_page(3)
        assert view.num_pages == 1
        assert view.mapped_fpages().tolist() == [4]

    def test_remove_missing_rejected(self, column):
        view = VirtualView(column, 0, 100)
        with pytest.raises(ValueError):
            view.remove_page(3)

    def test_slot_reuse_after_removal(self, column):
        """Removed slots become 'unused' virtual pages and are reused."""
        view = VirtualView(column, 0, 100)
        view.add_page(1)
        vpn1 = view.vpn_of(1)
        view.remove_page(1)
        view.add_page(2)
        assert view.vpn_of(2) == vpn1

    def test_map_run_consecutive(self, column):
        view = VirtualView(column, 0, 100)
        view.map_run(np.array([4, 5, 6]))
        assert view.num_pages == 3
        assert view.mapped_fpages().tolist() == [4, 5, 6]
        # one coalesced mmap: virtual pages contiguous, file pages contiguous
        assert column.mapper.translate(view.base_vpn) == (column.file, 4)
        assert column.mapper.translate(view.base_vpn + 2) == (column.file, 6)

    def test_map_run_rejects_gaps(self, column):
        view = VirtualView(column, 0, 100)
        with pytest.raises(ValueError):
            view.map_run(np.array([4, 6]))

    def test_map_run_rejects_empty(self, column):
        view = VirtualView(column, 0, 100)
        with pytest.raises(ValueError):
            view.map_run(np.array([], dtype=np.int64))

    def test_map_run_rejects_duplicates(self, column):
        view = VirtualView(column, 0, 100)
        view.map_run([4, 5])
        with pytest.raises(ValueError):
            view.map_run([5, 6])

    def test_capacity_exhaustion(self, column):
        """Fresh over-allocated slots run out even if holes exist —
        plan_run only consumes fresh space (holes serve add_page)."""
        view = VirtualView(column, 0, 100)
        view.map_run(np.arange(16))
        view.remove_page(0)
        with pytest.raises(RuntimeError):
            view.plan_run([0])
        # add_page, in contrast, reuses the freed slot
        view.add_page(0)
        assert view.num_pages == 16

    def test_vpn_of_errors(self, column):
        view = VirtualView(column, 0, 100)
        with pytest.raises(ValueError):
            view.vpn_of(3)
        with pytest.raises(ValueError):
            view.vpn_of(-1)

    def test_populate_faults_charged_at_map_time(self, column):
        view = VirtualView(column, 0, 100)
        before = column.mapper.cost.ledger.counter("soft_faults")
        view.map_run(np.array([1, 2, 3]))
        view.add_page(9)
        assert column.mapper.cost.ledger.counter("soft_faults") == before + 4
        # scanning afterwards charges nothing more
        assert view.charge_first_touch() == 0


class TestRangePredicates:
    def test_covers(self, column):
        view = VirtualView(column, 10, 20)
        assert view.covers(10, 20)
        assert view.covers(12, 15)
        assert not view.covers(9, 15)
        assert not view.covers(15, 21)

    def test_subset_superset(self, column):
        small = VirtualView(column, 12, 18)
        big = VirtualView(column, 10, 20)
        assert small.covers_subset_of(big)
        assert big.covers_superset_of(small)
        assert not big.covers_subset_of(small)
        # equal ranges are both subset and superset
        twin = VirtualView(column, 12, 18)
        assert small.covers_subset_of(twin) and small.covers_superset_of(twin)

    def test_update_range(self, column):
        view = VirtualView(column, 10, 20)
        view.update_range(5, 30)
        assert view.value_range == (5, 30)
        with pytest.raises(ValueError):
            view.update_range(30, 5)


class TestDestroy:
    def test_destroy_unmaps_reservation(self, column):
        view = VirtualView(column, 0, 100)
        view.add_page(3)
        base = view.base_vpn
        view.destroy()
        assert not column.mapper.address_space.is_mapped(base)
        assert view.num_pages == 0

    def test_destroy_idempotent(self, column):
        view = VirtualView(column, 0, 100)
        view.destroy()
        view.destroy()

    def test_destroy_charges_munmap(self, column):
        view = VirtualView(column, 0, 100)
        view.map_run(np.arange(4))
        before = column.mapper.cost.ledger.counter("pages_unmapped")
        view.destroy()
        assert column.mapper.cost.ledger.counter("pages_unmapped") == before + 4


class TestPlanRuns:
    def test_matches_per_run_planning(self, column):
        fpages = np.array([0, 1, 2, 5, 6, 9], dtype=np.int64)
        a = VirtualView(column, 0, 100)
        from repro.core.creation import consecutive_runs

        expected = [a.plan_run(run) for run in consecutive_runs(fpages)]
        b = VirtualView(column, 0, 100)
        got = b.plan_runs(fpages)
        assert [(r.fpage_start, r.npages) for r in got] == [
            (r.fpage_start, r.npages) for r in expected
        ]
        assert [r.vpn_start - b.base_vpn for r in got] == [
            r.vpn_start - a.base_vpn for r in expected
        ]
        assert b.num_pages == a.num_pages == 6
        assert b.mapped_fpages().tolist() == a.mapped_fpages().tolist()

    def test_uncoalesced_one_request_per_page(self, column):
        view = VirtualView(column, 0, 100)
        requests = view.plan_runs([3, 4, 8], coalesce=False)
        assert [(r.fpage_start, r.npages) for r in requests] == [
            (3, 1),
            (4, 1),
            (8, 1),
        ]

    def test_empty_set(self, column):
        view = VirtualView(column, 0, 100)
        assert view.plan_runs(np.empty(0, dtype=np.int64)) == []
        assert view.num_pages == 0

    def test_duplicates_rejected(self, column):
        view = VirtualView(column, 0, 100)
        with pytest.raises(ValueError):
            view.plan_runs([1, 2, 2, 3])
        with pytest.raises(ValueError):
            view.plan_runs([4, 2, 4])  # unsorted duplicate

    def test_already_indexed_rejected(self, column):
        view = VirtualView(column, 0, 100)
        view.add_page(5)
        with pytest.raises(ValueError):
            view.plan_runs([4, 5, 6])

    def test_unsorted_input_allowed(self, column):
        view = VirtualView(column, 0, 100)
        requests = view.plan_runs([7, 2, 3])
        assert [(r.fpage_start, r.npages) for r in requests] == [(7, 1), (2, 2)]
        assert view.num_pages == 3

    def test_full_view_rejected(self, column):
        full = VirtualView.full_view(column)
        with pytest.raises(RuntimeError):
            full.plan_runs([0])

"""Unit tests for optimized view creation (coalescing, background thread)."""

import numpy as np
import pytest

from repro.core.creation import (
    BackgroundMapper,
    consecutive_runs,
    create_partial_view,
    materialize_pages,
)
from repro.core.view import VirtualView
from repro.vm.cost import MAIN_LANE, MAPPER_LANE
from repro.vm.errors import MapError

from ..conftest import uniform_column


class TestConsecutiveRuns:
    def test_empty(self):
        assert consecutive_runs(np.array([], dtype=np.int64)) == []

    def test_single_run(self):
        runs = consecutive_runs(np.array([3, 4, 5]))
        assert [r.tolist() for r in runs] == [[3, 4, 5]]

    def test_multiple_runs(self):
        runs = consecutive_runs(np.array([1, 2, 5, 6, 7, 10]))
        assert [r.tolist() for r in runs] == [[1, 2], [5, 6, 7], [10]]

    def test_all_singletons(self):
        runs = consecutive_runs(np.array([1, 3, 5]))
        assert len(runs) == 3


class TestMaterializePages:
    def test_coalesced_call_count(self):
        col = uniform_column(num_pages=16)
        view = VirtualView(col, 0, 10)
        calls = materialize_pages(view, np.array([1, 2, 3, 8, 9, 14]), coalesce=True)
        assert calls == 3
        assert view.num_pages == 6

    def test_uncoalesced_one_call_per_page(self):
        col = uniform_column(num_pages=16)
        view = VirtualView(col, 0, 10)
        calls = materialize_pages(view, np.array([1, 2, 3]), coalesce=False)
        assert calls == 3

    def test_mmap_counter_matches(self):
        col = uniform_column(num_pages=16)
        view = VirtualView(col, 0, 10)
        before = col.mapper.cost.ledger.counter("mmap_calls")
        materialize_pages(view, np.array([1, 2, 3, 8]), coalesce=True)
        assert col.mapper.cost.ledger.counter("mmap_calls") == before + 2

    def test_empty_pages_noop(self):
        col = uniform_column(num_pages=16)
        view = VirtualView(col, 0, 10)
        assert materialize_pages(view, np.array([], dtype=np.int64)) == 0

    def test_mappings_correct_either_way(self):
        col = uniform_column(num_pages=16)
        for coalesce in (True, False):
            view = VirtualView(col, 0, 10)
            materialize_pages(view, np.array([2, 3, 9]), coalesce=coalesce)
            for fpage in (2, 3, 9):
                assert col.mapper.translate(view.vpn_of(fpage)) == (col.file, fpage)


class TestBackgroundMapper:
    def test_maps_on_mapper_lane(self):
        col = uniform_column(num_pages=16)
        cost = col.mapper.cost
        bg = BackgroundMapper(cost)
        try:
            view = VirtualView(col, 0, 10)
            main_before = cost.ledger.lane_ns(MAIN_LANE)
            materialize_pages(view, np.array([1, 2, 3]), background=bg)
            assert view.num_pages == 3
            # mmap work landed on the mapper lane, not the main lane
            assert cost.ledger.lane_ns(MAPPER_LANE) > 0
            main_delta = cost.ledger.lane_ns(MAIN_LANE) - main_before
            assert main_delta < cost.params.mmap_syscall_ns
            # the mapping is actually in place (real thread executed it)
            assert col.mapper.translate(view.vpn_of(2)) == (col.file, 2)
        finally:
            bg.stop()

    def test_flush_waits_for_completion(self):
        col = uniform_column(num_pages=64)
        bg = BackgroundMapper(col.mapper.cost)
        try:
            view = VirtualView(col, 0, 10)
            materialize_pages(view, np.arange(64), coalesce=False, background=bg)
            for fpage in range(64):
                assert col.mapper.translate(view.vpn_of(fpage)) == (col.file, fpage)
        finally:
            bg.stop()

    def test_queue_ops_charged_both_sides(self):
        col = uniform_column(num_pages=16)
        cost = col.mapper.cost
        bg = BackgroundMapper(cost)
        try:
            view = VirtualView(col, 0, 10)
            materialize_pages(view, np.array([1, 5, 9]), coalesce=True, background=bg)
            assert cost.ledger.counter("queue_ops") == 6  # 3 pushes + 3 pops
        finally:
            bg.stop()

    def test_stop_is_idempotent(self):
        col = uniform_column(num_pages=4)
        bg = BackgroundMapper(col.mapper.cost)
        bg.stop()
        bg.stop()

    def test_thread_failure_surfaces(self):
        col = uniform_column(num_pages=4)
        bg = BackgroundMapper(col.mapper.cost)
        try:
            view = VirtualView(col, 0, 10)
            request = view.plan_run([2])
            # sabotage: destroy the view so the mapped-to region vanishes
            bad = type(request)(
                vpn_start=request.vpn_start, fpage_start=99, npages=1
            )
            bg.submit(view, bad)
            with pytest.raises(MapError):
                bg.flush()
            # the failure is cleared on flush: the thread stays alive
            # and the mapper remains usable for the next view
            bg.submit(view, view.plan_run([3]))
            bg.flush()
            assert view.contains_page(3)
        finally:
            bg.stop()


class TestCreatePartialView:
    def test_report_contents(self):
        col = uniform_column(num_pages=32, hi=1_000_000)
        full = VirtualView.full_view(col)
        report = create_partial_view(col, [full], 0, 1000, coalesce=True)
        assert report.pages == report.view.num_pages
        assert report.view.covers(0, 1000)
        assert report.elapsed_ns > 0
        assert report.mapper_ns == 0  # no background thread
        assert report.main_ns == pytest.approx(report.elapsed_ns)

    def test_overlap_accounting_with_thread(self):
        col = uniform_column(num_pages=32, hi=1_000_000)
        full = VirtualView.full_view(col)
        bg = BackgroundMapper(col.mapper.cost)
        try:
            report = create_partial_view(col, [full], 0, 1000, background=bg)
        finally:
            bg.stop()
        assert report.mapper_ns > 0
        assert report.elapsed_ns == pytest.approx(
            max(report.main_ns, report.mapper_ns)
        )
        assert report.elapsed_ns < report.main_ns + report.mapper_ns

    def test_created_view_range_extended(self):
        col = uniform_column(num_pages=32, hi=1_000_000)
        full = VirtualView.full_view(col)
        report = create_partial_view(col, [full], 100_000, 200_000)
        lo, hi = report.view.value_range
        assert lo <= 100_000 and hi >= 200_000

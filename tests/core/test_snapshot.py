"""Unit and property tests for copy-on-write column snapshots."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot import SnapshotManager
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column


@pytest.fixture
def column():
    return build_column(np.arange(VALUES_PER_PAGE * 8))


@pytest.fixture
def manager(column):
    with SnapshotManager(column) as mgr:
        yield mgr


class TestSnapshotBasics:
    def test_snapshot_sees_creation_state(self, column, manager):
        snap = manager.create_snapshot()
        column.write(0, -99)
        assert snap.read(0) == 0          # snapshot: old value
        assert column.read(0) == -99      # live column: new value

    def test_snapshot_is_initially_shared(self, column, manager):
        snap = manager.create_snapshot()
        assert snap.copied_pages == 0
        assert snap.read(100) == column.read(100)

    def test_copy_on_write_is_per_page(self, column, manager):
        snap = manager.create_snapshot()
        column.write(0, -1)
        column.write(1, -2)  # same page: no second copy
        assert snap.copied_pages == 1
        column.write(VALUES_PER_PAGE, -3)  # second page
        assert snap.copied_pages == 2

    def test_unmodified_rows_follow_nothing(self, column, manager):
        snap = manager.create_snapshot()
        column.write(0, -1)
        # rows on other pages still read through the shared mapping
        assert snap.read(VALUES_PER_PAGE * 3) == VALUES_PER_PAGE * 3

    def test_values_reconstructs_snapshot_state(self, column, manager):
        original = column.values()
        snap = manager.create_snapshot()
        for row in (0, 511, 512, 4000):
            column.write(row, -row - 1)
        assert np.array_equal(snap.values(), original)

    def test_scan_filters_snapshot_state(self, column, manager):
        snap = manager.create_snapshot()
        column.write(10, 10**9)
        rowids, values = snap.scan(0, 20)
        assert rowids.tolist() == list(range(21))
        assert values.tolist() == list(range(21))

    def test_row_bounds(self, manager):
        snap = manager.create_snapshot()
        with pytest.raises(IndexError):
            snap.read(10**9)


class TestMultipleSnapshots:
    def test_each_snapshot_keeps_its_epoch(self, column, manager):
        snap1 = manager.create_snapshot()
        column.write(0, 111)
        snap2 = manager.create_snapshot()
        column.write(0, 222)
        assert snap1.read(0) == 0
        assert snap2.read(0) == 111
        assert column.read(0) == 222

    def test_copies_are_private(self, column, manager):
        snap1 = manager.create_snapshot()
        snap2 = manager.create_snapshot()
        column.write(0, -5)
        assert snap1.copied_pages == 1
        assert snap2.copied_pages == 1

    def test_live_snapshots_tracking(self, manager):
        snap1 = manager.create_snapshot()
        snap2 = manager.create_snapshot()
        snap1.release()
        assert manager.live_snapshots == [snap2]


class TestRelease:
    def test_release_frees_mapping_and_copies(self, column, manager):
        snap = manager.create_snapshot()
        column.write(0, -1)
        base = snap.base_vpn
        copy_name = f"{column.file.name}.snap{snap.snapshot_id}"
        snap.release()
        assert not column.mapper.address_space.is_mapped(base)
        from repro.vm.errors import FileError

        with pytest.raises(FileError):
            column.mapper.memory.get_file(copy_name)

    def test_release_idempotent(self, manager):
        snap = manager.create_snapshot()
        snap.release()
        snap.release()

    def test_released_snapshot_rejects_reads(self, manager):
        snap = manager.create_snapshot()
        snap.release()
        with pytest.raises(RuntimeError):
            snap.read(0)
        with pytest.raises(RuntimeError):
            snap.scan(0, 1)

    def test_released_snapshot_stops_copying(self, column, manager):
        snap = manager.create_snapshot()
        snap.release()
        column.write(0, -1)  # must not raise nor copy
        assert snap.copied_pages == 0

    def test_manager_close_detaches_hook(self, column):
        manager = SnapshotManager(column)
        manager.create_snapshot()
        manager.close()
        column.write(0, -1)  # no live hook side effects
        assert column.read(0) == -1


class TestCostAccounting:
    def test_snapshot_creation_is_one_mmap(self, column, manager):
        before = column.mapper.cost.ledger.counter("mmap_calls")
        manager.create_snapshot()
        assert column.mapper.cost.ledger.counter("mmap_calls") == before + 1

    def test_preserve_charges_copy_and_remap(self, column, manager):
        manager.create_snapshot()
        cost = column.mapper.cost
        copies_before = cost.ledger.counter("snapshot_pages_copied")
        column.write(0, -1)
        assert cost.ledger.counter("snapshot_pages_copied") == copies_before + 1


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 8 * VALUES_PER_PAGE - 1), st.integers(-100, 100)),
        max_size=50,
    ),
    snapshot_after=st.integers(0, 10),
)
def test_snapshot_isolation_property(writes, snapshot_after):
    """A snapshot taken mid-stream always equals the column state at
    snapshot time, no matter what is written afterwards."""
    column = build_column(np.arange(VALUES_PER_PAGE * 8))
    with SnapshotManager(column) as manager:
        cut = min(snapshot_after, len(writes))
        for row, value in writes[:cut]:
            column.write(row, value)
        frozen = column.values()
        snap = manager.create_snapshot()
        for row, value in writes[cut:]:
            column.write(row, value)
        assert np.array_equal(snap.values(), frozen)
        # spot-check scan consistency
        rowids, values = snap.scan(-100, 100)
        expected = np.nonzero((frozen >= -100) & (frozen <= 100))[0]
        assert np.array_equal(np.sort(rowids), expected)

"""Unit and property tests for the vectorized batch scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scan import NO_ABOVE, NO_BELOW, batch_scan
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column, uniform_column


class TestBatchScan:
    def test_empty_page_list(self, small_column):
        result = batch_scan(small_column, np.array([], dtype=np.int64), 0, 10)
        assert result.pages_scanned == 0
        assert result.rowids.size == 0
        assert result.qualifying_fpages.size == 0

    def test_matches_reference(self, small_column):
        lo, hi = 100_000, 200_000
        pages = np.arange(small_column.num_pages)
        result = batch_scan(small_column, pages, lo, hi)
        values = small_column.values()
        expected = np.nonzero((values >= lo) & (values <= hi))[0]
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_subset_of_pages(self, small_column):
        pages = np.array([3, 7, 11])
        result = batch_scan(small_column, pages, 0, 10**9)
        assert result.pages_scanned == 3
        rows_per_page = VALUES_PER_PAGE
        expected_rows = set()
        for p in pages.tolist():
            expected_rows.update(range(p * rows_per_page, (p + 1) * rows_per_page))
        assert set(result.rowids.tolist()) == expected_rows

    def test_scan_order_preserved(self, small_column):
        pages = np.array([9, 2, 5])
        result = batch_scan(small_column, pages, 0, 10**9)
        assert result.fpages.tolist() == [9, 2, 5]
        assert result.qualifying_fpages.tolist() == [9, 2, 5]

    def test_per_page_evidence(self):
        values = np.concatenate(
            [
                np.full(VALUES_PER_PAGE, 10),   # page 0: all below
                np.full(VALUES_PER_PAGE, 50),   # page 1: all inside
                np.full(VALUES_PER_PAGE, 90),   # page 2: all above
            ]
        )
        col = build_column(values)
        result = batch_scan(col, np.arange(3), 40, 60)
        assert result.page_qualifies.tolist() == [False, True, False]
        assert result.max_below[0] == 10
        assert result.min_above[0] == NO_ABOVE
        assert result.max_below[2] == NO_BELOW
        assert result.min_above[2] == 90

    def test_partial_last_page(self):
        values = np.full(VALUES_PER_PAGE + 7, 5)
        col = build_column(values)
        result = batch_scan(col, np.arange(2), 5, 5)
        assert result.rowids.size == values.size
        # the padding zeros must not show up as below-range evidence
        assert result.max_below[1] == NO_BELOW

    def test_padding_does_not_match_zero_query(self):
        values = np.full(VALUES_PER_PAGE + 7, 5)
        col = build_column(values)
        result = batch_scan(col, np.arange(2), 0, 0)
        assert result.rowids.size == 0

    def test_charges_per_page(self, small_column):
        cost = small_column.mapper.cost
        before = cost.ledger.counter("pages_scanned")
        batch_scan(small_column, np.arange(5), 0, 10, access_kind="random")
        assert cost.ledger.counter("pages_scanned") == before + 5

    def test_charge_flag(self, small_column):
        cost = small_column.mapper.cost
        before = cost.ledger.lane_ns()
        batch_scan(small_column, np.arange(5), 0, 10, charge=False)
        assert cost.ledger.lane_ns() == before

    def test_contiguous_fast_path_equals_gather(self, small_column):
        contiguous = batch_scan(small_column, np.arange(4, 12), 0, 500_000)
        gathered = batch_scan(
            small_column, np.array([4, 5, 6, 7, 8, 9, 10, 11]), 0, 500_000
        )
        assert np.array_equal(np.sort(contiguous.rowids), np.sort(gathered.rowids))
        assert contiguous.page_qualifies.tolist() == gathered.page_qualifies.tolist()

    def test_clamps_oversized_range(self, small_column):
        result = batch_scan(small_column, np.arange(2), -(2**70), 2**70)
        assert result.rowids.size == 2 * VALUES_PER_PAGE


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 1000),
    lo=st.integers(0, 1_000_000),
    width=st.integers(0, 1_000_000),
    data=st.data(),
)
def test_batch_scan_equals_per_page_scan(seed, lo, width, data):
    """The vectorized scan agrees with page-by-page scanning."""
    col = uniform_column(num_pages=6, seed=seed)
    hi = lo + width
    pages = data.draw(
        st.lists(st.integers(0, 5), min_size=0, max_size=6, unique=True)
    )
    fpages = np.array(pages, dtype=np.int64)
    result = batch_scan(col, fpages, lo, hi, charge=False)

    all_rowids = []
    for i, p in enumerate(pages):
        single = col.scan_page(p, lo, hi, charge=False)
        all_rowids.extend(single.rowids.tolist())
        assert bool(result.page_qualifies[i]) == (not single.empty)
        expected_below = single.max_below if single.max_below is not None else NO_BELOW
        expected_above = single.min_above if single.min_above is not None else NO_ABOVE
        assert result.max_below[i] == expected_below
        assert result.min_above[i] == expected_above
    assert sorted(result.rowids.tolist()) == sorted(all_rowids)

"""Unit tests for the AdaptiveDatabase facade."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase

from ..conftest import reference_rows


@pytest.fixture
def db():
    database = AdaptiveDatabase(AdaptiveConfig(max_views=5))
    rng = np.random.default_rng(0)
    database.create_table(
        "readings",
        {
            "temp": rng.integers(0, 100_000, 5110),
            "pressure": rng.integers(0, 1_000, 5110),
        },
    )
    yield database
    database.close()


class TestQueries:
    def test_query_matches_reference(self, db):
        column = db.table("readings").column("temp")
        result = db.query("readings", "temp", 1000, 5000)
        expected = reference_rows(column.values(), 1000, 5000)
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_layers_are_cached_per_column(self, db):
        a = db.layer("readings", "temp")
        b = db.layer("readings", "temp")
        c = db.layer("readings", "pressure")
        assert a is b
        assert a is not c

    def test_independent_columns(self, db):
        db.query("readings", "temp", 0, 100)
        assert db.layer("readings", "pressure").view_index.num_partials == 0

    def test_missing_table_or_column(self, db):
        with pytest.raises(KeyError):
            db.query("ghost", "temp", 0, 1)
        with pytest.raises(KeyError):
            db.query("readings", "ghost", 0, 1)


class TestUpdates:
    def test_update_and_flush(self, db):
        db.query("readings", "temp", 1000, 5000)  # create a view
        old = db.update("readings", "temp", 0, 2222)
        assert isinstance(old, int)
        stats = db.flush_updates("readings", "temp")
        assert stats.batch_size == 1
        column = db.table("readings").column("temp")
        result = db.query("readings", "temp", 1000, 5000)
        expected = reference_rows(column.values(), 1000, 5000)
        assert np.array_equal(np.sort(result.rowids), expected)

    def test_flush_drains_log(self, db):
        db.update("readings", "temp", 0, 1)
        db.flush_updates("readings", "temp")
        assert len(db.table("readings").pending_updates("temp")) == 0

    def test_flush_without_updates(self, db):
        stats = db.flush_updates("readings", "temp")
        assert stats.batch_size == 0


class TestLifecycle:
    def test_context_manager(self):
        with AdaptiveDatabase() as database:
            database.create_table("t", {"x": np.arange(100)})
            database.query("t", "x", 0, 10)
        # close() ran; layers are gone
        assert database._layers == {}

    def test_shared_cost_model(self, db):
        before = db.cost.ledger.lane_ns()
        db.query("readings", "temp", 0, 10)
        assert db.cost.ledger.lane_ns() > before

"""Additional facade configuration and boundary tests."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig, RoutingMode
from repro.core.facade import AdaptiveDatabase
from repro.vm.constants import PAGE_SIZE, VALUES_PER_PAGE
from repro.vm.cost import CostModel, CostParameters


class TestFacadeConfiguration:
    def test_custom_capacity_enforced(self):
        from repro.vm.errors import OutOfMemoryError

        db = AdaptiveDatabase(capacity_bytes=16 * PAGE_SIZE)
        db.create_table("small", {"x": np.arange(VALUES_PER_PAGE * 2)})
        with pytest.raises(OutOfMemoryError):
            db.create_table("big", {"x": np.arange(VALUES_PER_PAGE * 200)})
        db.close()

    def test_custom_cost_model_used(self):
        params = CostParameters(seq_value_read_ns=100.0)
        db = AdaptiveDatabase(cost=CostModel(params))
        db.create_table("t", {"x": np.arange(VALUES_PER_PAGE)})
        result = db.query("t", "x", 0, 10)
        # one page * 511 values * 100 ns dominates everything else
        assert result.stats.sim_ns > 40_000
        db.close()

    def test_config_propagates_to_layers(self):
        config = AdaptiveConfig(max_views=3, mode=RoutingMode.MULTI)
        db = AdaptiveDatabase(config)
        db.create_table("t", {"x": np.arange(VALUES_PER_PAGE * 4)})
        layer = db.layer("t", "x")
        assert layer.config is config
        assert layer.view_index.config.max_views == 3
        db.close()

    def test_two_tables_share_one_address_space(self):
        db = AdaptiveDatabase()
        db.create_table("a", {"x": np.arange(VALUES_PER_PAGE)})
        db.create_table("b", {"x": np.arange(VALUES_PER_PAGE)})
        col_a = db.table("a").column("x")
        col_b = db.table("b").column("x")
        assert col_a.mapper is col_b.mapper
        assert col_a.file is not col_b.file
        db.close()

    def test_query_on_second_column_isolated(self):
        db = AdaptiveDatabase(AdaptiveConfig(max_views=5))
        db.create_table(
            "t",
            {
                "sorted": np.arange(VALUES_PER_PAGE * 8),
                "flat": np.zeros(VALUES_PER_PAGE * 8, dtype=np.int64),
            },
        )
        db.query("t", "sorted", 100, 600)
        assert db.layer("t", "sorted").view_index.num_partials == 1
        assert db.layer("t", "flat").view_index.num_partials == 0
        db.close()


class TestQueryResultSurface:
    def test_len_matches_rowids(self):
        db = AdaptiveDatabase()
        db.create_table("t", {"x": np.arange(VALUES_PER_PAGE)})
        result = db.query("t", "x", 10, 19)
        assert len(result) == 10
        assert result.rowids.size == 10
        assert result.values.size == 10
        db.close()

    def test_values_align_with_rowids(self):
        db = AdaptiveDatabase()
        db.create_table("t", {"x": np.arange(VALUES_PER_PAGE) * 3})
        result = db.query("t", "x", 30, 60)
        for row, value in zip(result.rowids.tolist(), result.values.tolist()):
            assert value == row * 3
        db.close()

"""Stress and equivalence tests for the view-creation paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.creation import (
    BackgroundMapper,
    consecutive_runs,
    create_partial_view,
    materialize_pages,
)
from repro.core.view import VirtualView

from ..conftest import uniform_column


class TestCreationEquivalence:
    """All four optimization settings must build identical views."""

    def build(self, column, qualifying, coalesce, background):
        view = VirtualView(column, 0, 10**6)
        mapper_thread = None
        if background:
            mapper_thread = BackgroundMapper(column.mapper.cost)
        try:
            materialize_pages(
                view, qualifying, coalesce=coalesce, background=mapper_thread
            )
        finally:
            if mapper_thread is not None:
                mapper_thread.stop()
        return view

    @settings(max_examples=30, deadline=None)
    @given(
        pages=st.lists(st.integers(0, 31), unique=True, min_size=1, max_size=32),
    )
    def test_all_variants_map_the_same_pages(self, pages):
        column = uniform_column(num_pages=32)
        qualifying = np.sort(np.array(pages, dtype=np.int64))
        outcomes = []
        for coalesce in (False, True):
            for background in (False, True):
                view = self.build(column, qualifying, coalesce, background)
                outcomes.append(view.mapped_fpages().tolist())
                # translations are real, not just bookkeeping
                for fpage in pages:
                    assert column.mapper.translate(view.vpn_of(fpage)) == (
                        column.file,
                        fpage,
                    )
                view.destroy()
        assert all(o == outcomes[0] for o in outcomes)

    def test_coalescing_charges_less_for_clustered_pages(self):
        column = uniform_column(num_pages=64)
        run = np.arange(40, dtype=np.int64)
        cost = column.mapper.cost
        with cost.region() as coalesced:
            self.build(column, run, coalesce=True, background=False).destroy()
        with cost.region() as single:
            self.build(column, run, coalesce=False, background=False).destroy()
        assert coalesced.lane_ns() < single.lane_ns()


class TestBackgroundMapperStress:
    def test_many_views_through_one_mapper(self):
        """One mapping thread serving many sequential view creations."""
        column = uniform_column(num_pages=64, hi=1_000_000)
        full = VirtualView.full_view(column)
        bg = BackgroundMapper(column.mapper.cost)
        try:
            views = []
            for i in range(12):
                lo = i * 80_000
                report = create_partial_view(
                    column, [full], lo, lo + 60_000, background=bg
                )
                views.append(report.view)
            for view in views:
                expected = set(
                    column.pages_with_values_in(view.lo, view.hi).tolist()
                )
                assert expected <= set(view.mapped_fpages().tolist())
        finally:
            bg.stop()

    def test_interleaved_submissions(self):
        """Two views' runs interleaved into the same queue stay separate."""
        column = uniform_column(num_pages=32)
        bg = BackgroundMapper(column.mapper.cost)
        try:
            a = VirtualView(column, 0, 10)
            b = VirtualView(column, 20, 30)
            for fpage in range(0, 16, 2):
                bg.submit(a, a.plan_run([fpage]))
                bg.submit(b, b.plan_run([fpage + 1]))
            bg.flush()
            assert a.mapped_fpages().tolist() == list(range(0, 16, 2))
            assert b.mapped_fpages().tolist() == list(range(1, 16, 2))
        finally:
            bg.stop()


class TestConsecutiveRunsProperty:
    @settings(max_examples=100, deadline=None)
    @given(
        pages=st.lists(
            st.integers(0, 200), unique=True, min_size=0, max_size=60
        )
    )
    def test_runs_partition_the_input(self, pages):
        fpages = np.sort(np.array(pages, dtype=np.int64))
        runs = consecutive_runs(fpages)
        # concatenation reproduces the input exactly
        flattened = [p for run in runs for p in run.tolist()]
        assert flattened == fpages.tolist()
        # every run is consecutive, and runs do not touch
        for run in runs:
            values = run.tolist()
            assert values == list(range(values[0], values[0] + len(values)))
        for first, second in zip(runs, runs[1:]):
            assert second[0] > first[-1] + 1

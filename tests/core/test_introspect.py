"""Unit tests for view-index introspection."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig
from repro.core.introspect import (
    _value_coverage,
    inspect_view_index,
    render_index_report,
)
from repro.core.view import VirtualView
from repro.core.view_index import ViewIndex
from repro.vm.constants import VALUES_PER_PAGE

from ..conftest import build_column


def banded_column(num_pages=16, band=1000):
    values = np.repeat(np.arange(num_pages) * band, VALUES_PER_PAGE)
    return build_column(values)


def view_over(column, lo, hi):
    view = VirtualView(column, lo, hi)
    for page in column.pages_with_values_in(lo, hi).tolist():
        view.add_page(page)
    return view


@pytest.fixture
def index():
    column = banded_column()
    idx = ViewIndex(column, AdaptiveConfig(max_views=10))
    idx.insert(view_over(column, 1000, 3999))
    idx.insert(view_over(column, 3000, 5999))
    return idx


class TestInspect:
    def test_view_summaries(self, index):
        report = inspect_view_index(index)
        assert len(report.views) == 2
        first = report.views[0]
        assert (first.lo, first.hi) == (1000, 3999)
        assert first.pages == 3
        assert first.capacity == 16
        assert first.fill_fraction == pytest.approx(3 / 16)

    def test_page_coverage(self, index):
        report = inspect_view_index(index)
        # pages 1..5 are indexed by at least one view
        assert report.page_coverage == pytest.approx(5 / 16)

    def test_value_coverage(self, index):
        report = inspect_view_index(index)
        # column values span [0, 15000]; views cover [1000, 5999]
        assert report.value_coverage == pytest.approx(5000 / 15001, rel=0.01)

    def test_overlaps(self, index):
        report = inspect_view_index(index)
        assert report.overlaps == {(0, 1): 1}  # page 3 is shared

    def test_virtual_amplification(self, index):
        report = inspect_view_index(index)
        # full view (16) + 2 reservations (16 each) over 16 physical
        assert report.virtual_amplification == pytest.approx(3.0)

    def test_maps_lines_positive(self, index):
        report = inspect_view_index(index)
        assert report.maps_lines >= 3

    def test_maps_lines_consistent_with_maintenance_stats(self):
        """Regression: the report and MaintenanceStats must count the
        same maps file (one line per VMA, via maps_line_count)."""
        from repro.bench.harness import make_update_batch
        from repro.vm.procmaps import maps_line_count

        column = banded_column()
        layer = AdaptiveStorageLayer(column, AdaptiveConfig(max_views=5))
        for band in range(4):
            layer.answer_query(band * 1000, band * 1000 + 2500)
        batch = make_update_batch(column, 8, 0, 15_000, seed=3)
        lines_at_parse_time = maps_line_count(column.mapper.address_space)
        stats = layer.apply_updates(batch)
        assert stats.maps_lines == lines_at_parse_time
        report = inspect_view_index(layer.view_index)
        assert report.maps_lines == maps_line_count(column.mapper.address_space)
        layer.shutdown()

    def test_empty_index(self):
        column = banded_column()
        report = inspect_view_index(ViewIndex(column, AdaptiveConfig()))
        assert report.views == []
        assert report.page_coverage == 0.0
        assert report.value_coverage == 0.0
        assert report.total_view_pages == 0

    def test_generation_stop_reflected(self):
        column = banded_column()
        layer = AdaptiveStorageLayer(column, AdaptiveConfig(max_views=1))
        layer.answer_query(1000, 1999)
        report = inspect_view_index(layer.view_index)
        assert report.generation_stopped


class TestValueCoverage:
    def test_disjoint_intervals(self):
        column = banded_column()
        views = [view_over(column, 0, 99), view_over(column, 200, 299)]
        assert _value_coverage(views, 0, 999) == pytest.approx(200 / 1000)

    def test_overlapping_intervals_not_double_counted(self):
        column = banded_column()
        views = [view_over(column, 0, 499), view_over(column, 300, 799)]
        assert _value_coverage(views, 0, 999) == pytest.approx(800 / 1000)

    def test_no_views(self):
        assert _value_coverage([], 0, 10) == 0.0

    def test_full_cover_capped_at_one(self):
        column = banded_column()
        views = [view_over(column, -10, 2000)]
        assert _value_coverage(views, 0, 999) == 1.0


class TestRender:
    def test_render_contains_key_facts(self, index):
        text = render_index_report(inspect_view_index(index))
        assert "partial views        : 2" in text
        assert "view[0]" in text
        assert "shared pages" in text

    def test_render_empty(self):
        column = banded_column()
        text = render_index_report(
            inspect_view_index(ViewIndex(column, AdaptiveConfig()))
        )
        assert "partial views        : 0" in text

    def test_recent_decisions_in_report(self):
        column = banded_column()
        layer = AdaptiveStorageLayer(column, AdaptiveConfig(max_views=5))
        layer.answer_query(3000, 3999)
        layer.answer_query(3000, 3999)
        report = inspect_view_index(layer.view_index)
        assert len(report.recent_decisions) == 2
        text = render_index_report(report)
        assert "recent decisions" in text
        assert "inserted" in text
        assert "discarded_subset" in text

    def test_recent_decisions_capped_at_five(self):
        column = banded_column()
        layer = AdaptiveStorageLayer(column, AdaptiveConfig(max_views=20))
        for band in range(8):
            layer.answer_query(band * 1000, band * 1000 + 500)
        report = inspect_view_index(layer.view_index)
        assert len(report.recent_decisions) == 5

"""Cross-module integration tests: full lifecycle stories."""

import threading

import numpy as np
import pytest

from repro import (
    AdaptiveConfig,
    AdaptiveDatabase,
    QueryEngine,
    RoutingMode,
    SnapshotManager,
    inspect_view_index,
)
from repro.core.checkpoint import load_database, save_database
from repro.vm.constants import VALUES_PER_PAGE
from repro.workloads.distributions import sine
from repro.workloads.queries import selectivity_sweep

from .conftest import reference_rows


class TestFullLifecycle:
    """One database living through queries, updates, snapshots and a
    checkpoint-restore cycle — every result checked against ground
    truth."""

    def test_story(self, tmp_path):
        rng = np.random.default_rng(8)
        values = sine(512, 0, 1_000_000, seed=8)
        db = AdaptiveDatabase(AdaptiveConfig(max_views=20))
        db.create_table("metrics", {"value": values})
        column = db.table("metrics").column("value")

        # 1. adaptive warm-up over a query burst
        for lo in range(0, 900_000, 100_000):
            result = db.query("metrics", "value", lo, lo + 50_000)
            expected = reference_rows(column.values(), lo, lo + 50_000)
            assert np.array_equal(np.sort(result.rowids), expected)
        warm = db.query("metrics", "value", 100_000, 150_000)
        assert warm.stats.pages_scanned < column.num_pages

        # 2. introspection reflects the adaptivity
        report = inspect_view_index(db.layer("metrics", "value").view_index)
        assert report.views
        assert report.page_coverage > 0

        # 3. updates + batch alignment keep everything exact
        for row in rng.integers(0, column.num_rows, 300).tolist():
            db.update("metrics", "value", int(row), int(rng.integers(0, 1_000_000)))
        db.flush_updates("metrics", "value")
        post = db.query("metrics", "value", 100_000, 150_000)
        expected = reference_rows(column.values(), 100_000, 150_000)
        assert np.array_equal(np.sort(post.rowids), expected)

        # 4. checkpoint, restore, verify warm correctness
        path = str(tmp_path / "story.npz")
        save_database(db, path)
        restored = load_database(path)
        restored_column = restored.table("metrics").column("value")
        again = restored.query("metrics", "value", 100_000, 150_000)
        expected = reference_rows(restored_column.values(), 100_000, 150_000)
        assert np.array_equal(np.sort(again.rowids), expected)
        assert again.stats.pages_scanned < restored_column.num_pages
        restored.close()
        db.close()

    def test_query_engine_over_snapshotted_column(self):
        """Query engine + snapshots compose on the same column."""
        rng = np.random.default_rng(9)
        db = AdaptiveDatabase(AdaptiveConfig(max_views=10))
        table = db.create_table(
            "orders",
            {
                "amount": rng.integers(0, 100_000, 2044),
                "customer": rng.integers(0, 50, 2044),
            },
        )
        engine = QueryEngine(table, db.config)
        column = table.column("amount")
        with SnapshotManager(column) as snapshots:
            snap = snapshots.create_snapshot()
            frozen = column.values()
            for row in range(0, 2044, 3):
                table.update("amount", row, int(rng.integers(0, 100_000)))
            # engine sees live data
            live_rows = engine.select("amount", 0, 50_000).rowids
            expected_live = reference_rows(column.values(), 0, 50_000)
            assert np.array_equal(np.sort(live_rows), expected_live)
            # snapshot sees frozen data
            snap_rows, _ = snap.scan(0, 50_000)
            expected_snap = reference_rows(frozen, 0, 50_000)
            assert np.array_equal(np.sort(snap_rows), expected_snap)
        engine.close()
        db.close()


class TestConcurrency:
    def test_concurrent_queries_stay_correct(self):
        """Multiple threads hammering one layer: every result exact."""
        values = sine(256, 0, 1_000_000, seed=10)
        db = AdaptiveDatabase(AdaptiveConfig(max_views=30))
        db.create_table("t", {"x": values})
        column = db.table("t").column("x")
        ground_truth = column.values()
        queries = selectivity_sweep(
            num_queries=40, width_start=500_000, width_end=5_000,
            domain=(0, 1_000_000), seed=10,
        )
        errors: list[str] = []

        def worker(offset: int) -> None:
            for query in list(queries)[offset::4]:
                result = db.query("t", "x", query.lo, query.hi)
                expected = reference_rows(ground_truth, query.lo, query.hi)
                if not np.array_equal(np.sort(result.rowids), expected):
                    errors.append(f"mismatch at [{query.lo}, {query.hi}]")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        db.close()

    def test_concurrent_background_mapping(self):
        """Background-mapping mode under a multi-query burst."""
        values = sine(256, 0, 1_000_000, seed=11)
        db = AdaptiveDatabase(
            AdaptiveConfig(max_views=20, background_mapping=True)
        )
        db.create_table("t", {"x": values})
        ground_truth = db.table("t").column("x").values()
        for lo in range(0, 900_000, 45_000):
            result = db.query("t", "x", lo, lo + 20_000)
            expected = reference_rows(ground_truth, lo, lo + 20_000)
            assert np.array_equal(np.sort(result.rowids), expected)
        db.close()


class TestFailureInjection:
    def test_out_of_physical_memory_is_clean(self):
        """Creating a table beyond capacity raises and leaves no trace."""
        from repro.vm.errors import OutOfMemoryError

        db = AdaptiveDatabase(capacity_bytes=64 * 4096)
        with pytest.raises(OutOfMemoryError):
            db.create_table("big", {"x": np.arange(VALUES_PER_PAGE * 100)})
        with pytest.raises(KeyError):
            db.table("big")
        db.close()

    def test_single_page_column(self):
        """Degenerate geometry: one page, partial fill."""
        db = AdaptiveDatabase()
        db.create_table("tiny", {"x": np.array([5, 1, 9])})
        result = db.query("tiny", "x", 1, 5)
        assert sorted(result.values.tolist()) == [1, 5]
        db.query("tiny", "x", 0, 100)
        db.close()

    def test_constant_column(self):
        """All values identical: extensions reach the whole domain."""
        db = AdaptiveDatabase(AdaptiveConfig(max_views=5))
        db.create_table("c", {"x": np.full(VALUES_PER_PAGE * 4, 7)})
        assert len(db.query("c", "x", 7, 7)) == VALUES_PER_PAGE * 4
        assert len(db.query("c", "x", 8, 100)) == 0
        assert len(db.query("c", "x", 7, 7)) == VALUES_PER_PAGE * 4
        db.close()

    def test_domain_edge_queries(self):
        from repro.vm.constants import MAX_VALUE, MIN_VALUE

        db = AdaptiveDatabase()
        db.create_table("t", {"x": np.arange(VALUES_PER_PAGE * 2)})
        result = db.query("t", "x", MIN_VALUE, MAX_VALUE)
        assert len(result) == VALUES_PER_PAGE * 2
        # beyond-int64 bounds are clamped, not rejected
        result = db.query("t", "x", -(2**70), 2**70)
        assert len(result) == VALUES_PER_PAGE * 2
        db.close()

    def test_update_flood_then_queries(self):
        """Every row rewritten: views realign and stay exact."""
        rng = np.random.default_rng(12)
        db = AdaptiveDatabase(AdaptiveConfig(max_views=10))
        values = np.sort(rng.integers(0, 100_000, VALUES_PER_PAGE * 16))
        db.create_table("t", {"x": values})
        db.query("t", "x", 10_000, 20_000)
        table = db.table("t")
        for row in range(table.num_rows):
            table.update("x", row, int(rng.integers(0, 100_000)))
        db.flush_updates("t", "x")
        column = table.column("x")
        result = db.query("t", "x", 10_000, 20_000)
        expected = reference_rows(column.values(), 10_000, 20_000)
        assert np.array_equal(np.sort(result.rowids), expected)
        db.close()

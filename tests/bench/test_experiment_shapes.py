"""Shape tests: the experiments must reproduce the paper's findings.

Each test runs the real experiment at a small scale and asserts the
*qualitative* result the paper reports (see repro.bench.paper.SHAPES).
Absolute numbers are not compared — the substrate is a simulator.
"""

import pytest

from repro.bench.fig2 import run_fig2
from repro.bench.fig3 import run_fig3
from repro.bench.fig4 import run_fig4
from repro.bench.fig5 import run_fig5
from repro.bench.fig6 import run_fig6
from repro.bench.fig7 import run_fig7
from repro.bench.table1 import build_table1

PAGES = 768  # small but structured enough for every shape


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(num_pages=PAGES, num_queries=80)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(num_pages=PAGES, num_queries=80)


class TestFig2Shapes:
    def test_profiles(self):
        result = run_fig2(num_pages=400)
        sine = result.profiles["sine"]
        assert abs(sine.detected_period - 100) <= 2
        sparse = result.profiles["sparse"]
        assert sparse.zero_page_fraction == pytest.approx(0.9, abs=0.01)
        linear = result.profiles["linear"]
        assert linear.page_level_correlation > 0.99
        uniform = result.profiles["uniform"]
        assert abs(uniform.page_level_correlation) < 0.3


class TestFig3Shapes:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(num_pages=PAGES)

    def test_zone_map_most_expensive_everywhere(self, fig3):
        for k in fig3.ks:
            points = fig3.by_k(k)
            worst = max(points.values(), key=lambda p: p.query_ms)
            assert worst.variant == "zone_map", f"k={k}"

    def test_virtual_view_wins_everywhere(self, fig3):
        for k in fig3.ks:
            points = fig3.by_k(k)
            best = min(points.values(), key=lambda p: p.query_ms)
            assert best.variant == "virtual_view", f"k={k}"

    def test_indexed_fraction_grows_with_k(self, fig3):
        """Small k indexes a small page fraction, large k a large one.

        Note: the paper states 0.52 % / 27.9 % of pages for k = 12.5k /
        800k, which implies ~42 participating values per 4 KiB page; with
        the paper's own 8 B-value layout (511 values/page) an i.i.d.
        uniform column saturates faster.  We keep the stated layout and
        assert the monotone shape (see EXPERIMENTS.md).
        """
        low = fig3.by_k(12_500)["bitmap"]
        high = fig3.by_k(800_000)["bitmap"]
        assert low.indexed_pages / fig3.num_pages < 0.15
        assert high.indexed_pages / fig3.num_pages > 0.5
        assert low.indexed_pages < high.indexed_pages

    def test_cost_grows_with_k(self, fig3):
        virtual = [fig3.by_k(k)["virtual_view"].query_ms for k in fig3.ks]
        assert virtual[0] < virtual[-1]


class TestFig4Shapes:
    def test_adaptive_beats_full_scans_on_all_distributions(self, fig4):
        for name, series in fig4.series.items():
            assert series.speedup > 1.0, name

    def test_warmup_then_improvement(self, fig4):
        """Late phases must be cheaper than the first phase."""
        for name, series in fig4.series.items():
            phases = series.adaptive_phase_ms
            assert min(phases[1:]) < phases[0], name

    def test_views_get_created(self, fig4):
        for name, series in fig4.series.items():
            assert series.views_created > 3, name

    def test_scanned_pages_collapse(self, fig4):
        for name, series in fig4.series.items():
            queries = series.adaptive.stats.queries
            n = len(queries)
            early = sum(q.pages_scanned for q in queries[: n // 4])
            late = sum(q.pages_scanned for q in queries[-n // 4 :])
            assert late < early, name


class TestFig5Shapes:
    def test_multi_view_mode_beats_full_scans(self, fig5):
        for label, series in fig5.series.items():
            assert series.speedup > 1.0, label

    def test_multiple_views_used(self, fig5):
        for label, series in fig5.series.items():
            assert series.max_views_used >= 2, label

    def test_view_limits_respected(self, fig5):
        for label, series in fig5.series.items():
            last = series.adaptive.stats.queries[-1]
            assert last.partial_views_after <= series.max_views


class TestTable1Shapes:
    def test_adaptive_wins_every_column(self, fig4, fig5):
        table = build_table1(fig4, fig5)
        assert len(table.rows) == 5
        for row in table.rows:
            assert row.adaptive_s < row.full_scan_s, row.experiment

    def test_best_factor_in_papers_ballpark(self, fig4, fig5):
        """The paper reports up to 1.88x; we accept a generous band."""
        table = build_table1(fig4, fig5)
        assert 1.2 < table.best_factor < 8.0

    def test_paper_numbers_attached(self, fig4, fig5):
        table = build_table1(fig4, fig5)
        row = next(r for r in table.rows if "sine_single" in r.experiment)
        assert row.paper_full_scan_s == 58.6
        assert row.paper_factor == pytest.approx(58.6 / 41.2)


class TestFig6Shapes:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6(num_pages=PAGES)

    def test_each_optimization_helps(self, fig6):
        for case in ("uniform", "sine"):
            points = fig6.by_case(case)
            assert points["coalesce"].elapsed_ms < points["none"].elapsed_ms
            assert points["thread"].elapsed_ms < points["none"].elapsed_ms
            assert points["both"].elapsed_ms == min(
                p.elapsed_ms for p in points.values()
            )

    def test_combined_speedup_positive(self, fig6):
        for case in ("uniform", "sine"):
            assert fig6.speedup(case) > 1.3

    def test_coalescing_helps_more_on_clustered_data(self, fig6):
        """Sine's long runs make coalescing the dominant optimization."""
        uniform = fig6.by_case("uniform")
        sine = fig6.by_case("sine")
        gain = lambda pts: pts["none"].elapsed_ms / pts["coalesce"].elapsed_ms
        assert gain(sine) > gain(uniform)

    def test_coalescing_reduces_mmap_calls(self, fig6):
        for case in ("uniform", "sine"):
            points = fig6.by_case(case)
            assert points["coalesce"].mmap_calls < points["none"].mmap_calls
            assert points["none"].mmap_calls == points["none"].pages

    def test_thread_moves_work_off_the_scan_lane(self, fig6):
        points = fig6.by_case("uniform")
        assert points["thread"].map_lane_ms > 0
        assert points["none"].map_lane_ms == 0


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_fig7(num_pages=PAGES)

    def test_parse_dominates_small_batches(self, fig7):
        for case in ("uniform", "sine"):
            smallest = fig7.by_case(case)[0]
            assert smallest.parse_ms > smallest.update_ms

    def test_parse_costlier_for_uniform_than_sine(self, fig7):
        uniform = fig7.by_case("uniform")[0]
        sine = fig7.by_case("sine")[0]
        assert uniform.parse_ms > sine.parse_ms
        assert uniform.maps_lines > sine.maps_lines

    def test_incremental_beats_rebuild_for_small_batches(self, fig7):
        for case in ("uniform", "sine"):
            for point in fig7.by_case(case)[:-1]:
                assert point.total_ms < point.rebuild_ms, (case, point.batch_size)

    def test_update_cost_grows_with_batch_size(self, fig7):
        for case in ("uniform", "sine"):
            updates = [p.update_ms for p in fig7.by_case(case)]
            assert updates == sorted(updates)

    def test_uniform_removes_more_pages_than_sine(self, fig7):
        """Uniform views hold barely-qualifying pages; updates empty
        them. Clustered sine pages keep qualifying."""
        uniform_removed = sum(p.pages_removed for p in fig7.by_case("uniform"))
        sine_removed = sum(p.pages_removed for p in fig7.by_case("sine"))
        assert uniform_removed > sine_removed

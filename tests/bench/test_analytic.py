"""The analytic model must agree with the simulator."""

import numpy as np
import pytest

from repro.bench.analytic import (
    expected_runs,
    fig3_query_ns,
    full_scan_ns,
    page_qualification_probability,
    paper_scale_estimates,
    render_paper_scale,
    uniform_creation_ns,
)
from repro.bench.fig3 import run_fig3
from repro.bench.fig6 import run_fig6
from repro.bench.harness import fresh_column
from repro.baselines.full_scan import FullScanBaseline
from repro.vm.cost import CostParameters
from repro.workloads.distributions import uniform

PARAMS = CostParameters()


class TestFormulas:
    def test_qualification_probability_bounds(self):
        assert page_qualification_probability(0, 100) == 0.0
        assert page_qualification_probability(100, 100) == 1.0
        p = page_qualification_probability(12_500, 100_000_000, per_page=42)
        assert p == pytest.approx(0.00524, rel=0.01)

    def test_qualification_probability_validation(self):
        with pytest.raises(ValueError):
            page_qualification_probability(-1, 100)
        with pytest.raises(ValueError):
            page_qualification_probability(101, 100)

    def test_expected_runs_limits(self):
        assert expected_runs(100, 0.0) == 0.0
        assert expected_runs(100, 1.0) == 1.0  # one giant run
        assert expected_runs(0, 0.5) == 0.0
        # maximum fragmentation around p = 0.5
        assert expected_runs(100, 0.5) > expected_runs(100, 0.1)

    def test_expected_runs_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        p, n = 0.3, 2_000
        samples = []
        for _ in range(50):
            bits = rng.random(n) < p
            runs = int(bits[0]) + int(np.sum(bits[1:] & ~bits[:-1]))
            samples.append(runs)
        assert np.mean(samples) == pytest.approx(expected_runs(n, p), rel=0.05)


class TestAgainstSimulator:
    def test_full_scan_prediction(self):
        num_pages = 512
        column = fresh_column(uniform(num_pages, seed=1))
        baseline = FullScanBaseline(column)
        _, _, stats = baseline.query(0, 10)
        assert stats.sim_ns == pytest.approx(
            full_scan_ns(PARAMS, num_pages), rel=0.01
        )

    def test_fig3_predictions_track_measurements(self):
        result = run_fig3(num_pages=1024, ks=[50_000, 400_000], verify=False)
        for k in result.ks:
            for variant, point in result.by_k(k).items():
                predicted_ms = (
                    fig3_query_ns(PARAMS, variant, result.num_pages, k) / 1e6
                )
                # binomial expectation + update noise: generous band
                assert point.query_ms == pytest.approx(predicted_ms, rel=0.25), (
                    k,
                    variant,
                )

    def test_fig3_unknown_variant(self):
        with pytest.raises(ValueError):
            fig3_query_ns(PARAMS, "btree", 100, 10)

    def test_fig6_uniform_predictions(self):
        result = run_fig6(num_pages=1024)
        points = result.by_case("uniform")
        cases = {
            "none": dict(coalesce=False, background=False),
            "coalesce": dict(coalesce=True, background=False),
            "both": dict(coalesce=True, background=True),
        }
        for variant, kwargs in cases.items():
            predicted_ms = (
                uniform_creation_ns(PARAMS, result.num_pages, 100_000, **kwargs)
                / 1e6
            )
            assert points[variant].elapsed_ms == pytest.approx(
                predicted_ms, rel=0.15
            ), variant


class TestPaperScale:
    def test_full_scan_matches_calibration_anchor(self):
        estimates = {e.quantity: e for e in paper_scale_estimates()}
        full = estimates["full scan of the 3.9 GB column"]
        assert 200 <= full.predicted_ms <= 300  # the paper's ~234 ms

    def test_accumulated_full_scans_in_papers_range(self):
        estimates = {e.quantity: e for e in paper_scale_estimates()}
        total = estimates["250 full-scan queries (Table 1, row 1)"]
        assert 50_000 <= total.predicted_ms <= 90_000  # 58.6-88.2 s

    def test_virtual_beats_zone_map_at_paper_scale(self):
        estimates = {e.quantity: e for e in paper_scale_estimates()}
        virtual = estimates["Fig. 3 virtual view query, k=12.5k (96 B records)"]
        zone = estimates["Fig. 3 zone map query, k=12.5k (96 B records)"]
        assert virtual.predicted_ms < zone.predicted_ms / 10

    def test_fig6_optimizations_help_at_paper_scale(self):
        estimates = {e.quantity: e for e in paper_scale_estimates()}
        unoptimized = estimates["Fig. 6a unoptimized creation (uniform, v[0,100k])"]
        optimized = estimates["Fig. 6a fully optimized creation"]
        speedup = unoptimized.predicted_ms / optimized.predicted_ms
        assert 1.3 <= speedup <= 3.0  # the paper reports 1.6x

    def test_render(self):
        text = render_paper_scale()
        assert "Analytic paper-scale predictions" in text
        assert "234 ms" in text

"""Unit tests for the JSON export of experiment results."""

import json

import numpy as np
import pytest

from repro.bench.export import dump_result, export_suite, to_jsonable
from repro.bench.fig3 import run_fig3
from repro.bench.experiments import run_all
from repro.core.stats import QueryStats, ViewEvent


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(1.5) == 1.5

    def test_numpy_converted(self):
        assert to_jsonable(np.int64(7)) == 7
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_enum_converted(self):
        assert to_jsonable(ViewEvent.INSERTED) == "inserted"

    def test_dataclass_converted(self):
        stats = QueryStats(lo=1, hi=2, sim_ns=3.0, view_event=ViewEvent.NONE)
        out = to_jsonable(stats)
        assert out["lo"] == 1
        assert out["view_event"] == "none"

    def test_nested_containers(self):
        data = {"a": [QueryStats(lo=0, hi=1)], "b": (1, 2)}
        out = to_jsonable(data)
        assert out["a"][0]["hi"] == 1
        assert out["b"] == [1, 2]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestDumpAndExport:
    def test_dump_result_roundtrips_through_json(self, tmp_path):
        result = run_fig3(num_pages=256, ks=[12_500], verify=False)
        path = dump_result(result, tmp_path / "fig3.json")
        data = json.loads(path.read_text())
        assert data["num_pages"] == 256
        assert len(data["points"]) == 4  # one per variant
        assert {p["variant"] for p in data["points"]} == {
            "zone_map", "bitmap", "page_vector", "virtual_view",
        }

    def test_export_suite_writes_everything(self, tmp_path):
        suite = run_all(num_pages=256, num_queries=20)
        written = export_suite(suite, tmp_path / "out")
        assert set(written) == {
            "fig2", "fig3", "fig4", "fig5", "table1", "fig6", "fig7",
            "manifest",
        }
        for path in written.values():
            assert path.exists()
            json.loads(path.read_text())  # all valid JSON
        manifest = json.loads(written["manifest"].read_text())
        assert manifest["experiments"]["fig4"] == "fig4.json"

    def test_exported_fig4_preserves_series(self, tmp_path):
        suite = run_all(num_pages=256, num_queries=20)
        written = export_suite(suite, tmp_path / "out")
        data = json.loads(written["fig4"].read_text())
        sine = data["series"]["sine"]
        assert len(sine["adaptive"]["stats"]["queries"]) == 20
        assert sine["adaptive"]["stats"]["queries"][0]["sim_ns"] > 0

"""Unit tests for the suite regression comparator."""

import json

import pytest

from repro.bench.experiments import run_all
from repro.bench.export import export_suite
from repro.bench.regress import MetricDelta, compare_suites, extract_metrics


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    suite = run_all(num_pages=256, num_queries=20)
    directory = tmp_path_factory.mktemp("suite")
    export_suite(suite, directory)
    return directory


class TestMetricDelta:
    def test_ratio(self):
        assert MetricDelta("m", 2.0, 3.0).ratio == 1.5
        assert MetricDelta("m", 0.0, 0.0).ratio == 1.0
        assert MetricDelta("m", 0.0, 1.0).ratio == float("inf")

    def test_regressed(self):
        assert MetricDelta("m", 1.0, 1.2).regressed(0.1)
        assert not MetricDelta("m", 1.0, 1.04).regressed(0.05)
        # improvements outside the band are flagged too (shape changes)
        assert MetricDelta("m", 1.0, 0.5).regressed(0.1)


class TestExtractMetrics:
    def test_headline_metrics_present(self, exported):
        metrics = extract_metrics(exported)
        assert any(key.startswith("fig3.") for key in metrics)
        assert "fig4.sine.speedup" in metrics
        assert any(key.endswith(".rebuild_ms") for key in metrics)
        assert all(isinstance(v, float) for v in metrics.values())


class TestCompareSuites:
    def test_identical_suites_pass(self, exported):
        report = compare_suites(exported, exported)
        assert report.ok
        assert report.deltas
        assert all(d.ratio == 1.0 for d in report.deltas)

    def test_perturbed_suite_flagged(self, exported, tmp_path):
        # copy the export and inflate one fig4 series' times by 2x
        current = tmp_path / "current"
        current.mkdir()
        for path in exported.iterdir():
            (current / path.name).write_text(path.read_text())
        fig4 = json.loads((current / "fig4.json").read_text())
        for query in fig4["series"]["sine"]["adaptive"]["stats"]["queries"]:
            query["sim_ns"] *= 2
        (current / "fig4.json").write_text(json.dumps(fig4))

        report = compare_suites(exported, current, tolerance=0.05)
        assert not report.ok
        names = {d.name for d in report.regressions}
        assert "fig4.sine.adaptive_s" in names
        assert "fig4.sine.speedup" in names
        # unrelated metrics did not move
        assert "fig6.uniform.none_ms" not in names

    def test_render(self, exported):
        text = compare_suites(exported, exported).render()
        assert "OK" in text
        assert "fig4.sine.speedup" in text

"""Robustness of the paper's conclusions to cost-model perturbation.

The reproduction's performance claims rest on the calibrated cost
constants.  These tests re-run key experiments with every constant
jittered by ±25 % and assert that the qualitative conclusions — the
orderings the paper reports — survive.  If a conclusion only held for
one magic parameterization, it would not be a finding.
"""

import dataclasses

import numpy as np
import pytest

from repro.bench.fig3 import run_fig3
from repro.bench.fig4 import run_fig4
from repro.vm import cost as cost_module
from repro.vm.cost import CostParameters


def jittered_parameters(seed: int, amount: float = 0.25) -> CostParameters:
    """Every cost constant scaled by a random factor in [1-a, 1+a]."""
    rng = np.random.default_rng(seed)
    changes = {}
    for field in dataclasses.fields(CostParameters):
        base = getattr(CostParameters(), field.name)
        factor = 1.0 + rng.uniform(-amount, amount)
        changes[field.name] = base * factor
    return CostParameters(**changes)


@pytest.fixture
def patched_params(monkeypatch, request):
    """Patch the default CostParameters used by fresh cost models."""
    params = jittered_parameters(seed=request.param)
    original_init = cost_module.CostModel.__init__

    def patched_init(self, p=None):
        original_init(self, p or params)

    monkeypatch.setattr(cost_module.CostModel, "__init__", patched_init)
    return params


@pytest.mark.parametrize("patched_params", [1, 2, 3], indirect=True)
class TestOrderingsSurviveJitter:
    def test_fig3_virtual_view_still_wins(self, patched_params):
        result = run_fig3(num_pages=512, ks=[25_000, 200_000], verify=False)
        for k in result.ks:
            points = result.by_k(k)
            best = min(points.values(), key=lambda p: p.query_ms)
            assert best.variant == "virtual_view", k

    def test_fig4_adaptive_still_beats_full_scans(self, patched_params):
        result = run_fig4(
            distributions=("sine",), num_pages=512, num_queries=60
        )
        assert result.series["sine"].speedup > 1.0

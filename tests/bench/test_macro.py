"""Tests for the macro analytics workload."""

import pytest

from repro.bench.macro import (
    DATE_DOMAIN,
    MacroResult,
    build_workload,
    render_macro,
    run_macro,
)


class TestWorkload:
    def test_mix_proportions(self):
        queries = build_workload(400, seed=1)
        kinds = [q.kind for q in queries]
        assert 0.45 < kinds.count("date") / 400 < 0.75
        assert 0.10 < kinds.count("price") / 400 < 0.40
        assert kinds.count("conjunction") > 0

    def test_date_windows_align_to_weeks(self):
        queries = build_workload(200, seed=2)
        for q in queries:
            if "shipdate" in q.predicates:
                lo, hi = q.predicates["shipdate"]
                assert lo % 7 == 0
                assert hi - lo + 1 in (7, 14, 28)
                assert 0 <= lo <= hi <= DATE_DOMAIN[1]

    def test_deterministic(self):
        a = build_workload(50, seed=3)
        b = build_workload(50, seed=3)
        assert [q.predicates for q in a] == [q.predicates for q in b]


class TestRun:
    @pytest.fixture(scope="class")
    def result(self) -> MacroResult:
        return run_macro(num_pages=512, num_queries=60)

    def test_all_engines_ran(self, result):
        labels = [run.label for run in result.runs]
        assert labels == ["full_scan", "adaptive_single", "adaptive_multi_cost"]

    def test_engines_agree_on_rows(self, result):
        totals = {run.total_rows for run in result.runs}
        assert len(totals) == 1

    def test_adaptive_beats_full_scan(self, result):
        assert result.speedup("adaptive_single") > 1.0
        assert result.speedup("adaptive_multi_cost") > 1.0

    def test_full_scan_creates_no_views(self, result):
        assert result.by_label("full_scan").views_created == 0

    def test_adaptive_scans_fewer_pages(self, result):
        assert (
            result.by_label("adaptive_single").pages_scanned
            < result.by_label("full_scan").pages_scanned
        )

    def test_render(self, result):
        text = render_macro(result)
        assert "Macro workload" in text
        assert "adaptive_multi_cost" in text

"""Unit tests for the plain-text reporting helpers."""

import pytest

from repro.bench.reporting import (
    format_factor,
    format_phases,
    format_table,
    sparkline,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ["name", "value"],
            [["a", 1], ["bbbb", 22.5]],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_number_formatting(self):
        out = format_table(["v"], [[1234567], [0.12345], [3.14159], [0]])
        assert "1,234,567" in out
        assert "0.1235" in out or "0.1234" in out
        assert "3.14" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestOtherFormatters:
    def test_format_phases(self):
        line = format_phases("sine", [1.0, 0.5])
        assert "sine" in line
        assert "1.000 -> 0.500" in line

    def test_format_factor(self):
        line = format_factor("t", 2.0, 1.0)
        assert "2.00x" in line

    def test_format_factor_zero_guard(self):
        assert "zero" in format_factor("t", 2.0, 0.0)

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3], width=4)
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_downsamples(self):
        line = sparkline(list(range(1000)), width=10)
        assert len(line) == 10

    def test_sparkline_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

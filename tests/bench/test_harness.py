"""Unit tests for the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench.harness import (
    DEFAULT_DIVISOR,
    PAPER_COLUMN_PAGES,
    SequenceRun,
    fresh_column,
    make_update_batch,
    moving_average,
    phase_means,
    run_adaptive_sequence,
    run_full_scan_sequence,
    scale_divisor,
    scaled_pages,
    session_count,
    session_seed,
    shard_count,
    tier_budget,
    verify_runs_agree,
    wal_fsync_policy,
)
from repro.core.adaptive import AdaptiveStorageLayer
from repro.core.config import AdaptiveConfig
from repro.core.stats import QueryStats
from repro.workloads.distributions import sine
from repro.workloads.queries import QuerySequence, RangeQuery


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled_pages() == PAPER_COLUMN_PAGES // DEFAULT_DIVISOR

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        assert scaled_pages() == 2 * (PAPER_COLUMN_PAGES // DEFAULT_DIVISOR)

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scaled_pages()

    def test_fractional_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.5")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scaled_pages()

    def test_non_positive_env_rejected(self, monkeypatch):
        for bad in ("0", "-4"):
            monkeypatch.setenv("REPRO_SCALE", bad)
            with pytest.raises(ValueError, match="REPRO_SCALE"):
                scaled_pages()

    def test_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled_pages(64) == 64

    def test_scale_divisor(self):
        assert scale_divisor(1000) == pytest.approx(1000.0)


class TestShardCount:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert shard_count() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert shard_count() == 8

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(ValueError, match="REPRO_SHARDS"):
            shard_count()

    def test_fractional_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2.5")
        with pytest.raises(ValueError, match="REPRO_SHARDS"):
            shard_count()

    def test_non_positive_env_rejected(self, monkeypatch):
        for bad in ("0", "-2"):
            monkeypatch.setenv("REPRO_SHARDS", bad)
            with pytest.raises(ValueError, match="REPRO_SHARDS"):
                shard_count()


class TestSessionCount:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SESSIONS", raising=False)
        assert session_count() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSIONS", "8")
        assert session_count() == 8

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSIONS", "crowd")
        with pytest.raises(ValueError, match="REPRO_SESSIONS"):
            session_count()

    def test_fractional_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSIONS", "1.5")
        with pytest.raises(ValueError, match="REPRO_SESSIONS"):
            session_count()

    def test_non_positive_env_rejected(self, monkeypatch):
        for bad in ("0", "-3"):
            monkeypatch.setenv("REPRO_SESSIONS", bad)
            with pytest.raises(ValueError, match="REPRO_SESSIONS"):
                session_count()


class TestTierBudget:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIER_BUDGET", raising=False)
        assert tier_budget() is None

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_BUDGET", "1024")
        assert tier_budget() == 1024

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_BUDGET", "hot")
        with pytest.raises(ValueError, match="REPRO_TIER_BUDGET"):
            tier_budget()

    def test_fractional_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_BUDGET", "0.25")
        with pytest.raises(ValueError, match="REPRO_TIER_BUDGET"):
            tier_budget()

    def test_non_positive_env_rejected(self, monkeypatch):
        for bad in ("0", "-16"):
            monkeypatch.setenv("REPRO_TIER_BUDGET", bad)
            with pytest.raises(ValueError, match="REPRO_TIER_BUDGET"):
                tier_budget()


class TestWalFsyncPolicy:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAL_FSYNC", raising=False)
        assert wal_fsync_policy() is None

    def test_env_values_pass_through(self, monkeypatch):
        for policy in ("always", "batch", "off"):
            monkeypatch.setenv("REPRO_WAL_FSYNC", policy)
            assert wal_fsync_policy() == policy

    def test_unknown_policy_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WAL_FSYNC", "sometimes")
        with pytest.raises(ValueError, match="REPRO_WAL_FSYNC"):
            wal_fsync_policy()

    def test_empty_policy_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WAL_FSYNC", "")
        with pytest.raises(ValueError, match="REPRO_WAL_FSYNC"):
            wal_fsync_policy()


class TestSessionSeed:
    def test_default_is_base_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert session_seed() == 0

    def test_env_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        assert session_seed() == 7

    def test_shard_seeds_are_distinct(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "11")
        seeds = {session_seed(shard=i) for i in range(8)}
        assert len(seeds) == 8
        assert session_seed() not in seeds

    def test_shard_seed_matches_derive_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "5")
        from repro.seeds import derive_seed

        assert session_seed(shard=3) == derive_seed(3)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError, match="shard index"):
            session_seed(shard=-1)


class TestFreshColumn:
    def test_isolated_cost_models(self):
        a = fresh_column(np.arange(100))
        b = fresh_column(np.arange(100))
        assert a.mapper.cost is not b.mapper.cost
        before = b.mapper.cost.ledger.lane_ns()
        a.mapper.cost.ledger.charge(100.0)
        assert b.mapper.cost.ledger.lane_ns() == before


class TestMakeUpdateBatch:
    def test_applies_and_logs(self):
        col = fresh_column(np.zeros(1000, dtype=np.int64))
        batch = make_update_batch(col, 50, 10, 20, seed=1)
        assert len(batch) == 50
        for record in batch:
            assert record.old == 0
            assert 10 <= record.new <= 20
            assert col.read(record.row) in range(10, 21)

    def test_without_applying(self):
        col = fresh_column(np.zeros(1000, dtype=np.int64))
        batch = make_update_batch(col, 10, 5, 9, seed=1, apply_to_column=False)
        assert all(col.read(r.row) == 0 for r in batch)

    def test_deterministic(self):
        col_a = fresh_column(np.zeros(1000, dtype=np.int64))
        col_b = fresh_column(np.zeros(1000, dtype=np.int64))
        a = make_update_batch(col_a, 20, 0, 100, seed=3)
        b = make_update_batch(col_b, 20, 0, 100, seed=3)
        assert [(u.row, u.new) for u in a] == [(u.row, u.new) for u in b]


class TestSequenceRunners:
    def queries(self):
        return QuerySequence([RangeQuery(0, 50_000), RangeQuery(100, 900)])

    def test_adaptive_and_full_agree(self):
        values = sine(32, 0, 100_000, seed=2)
        layer = AdaptiveStorageLayer(fresh_column(values), AdaptiveConfig(max_views=4))
        adaptive = run_adaptive_sequence(layer, self.queries())
        full = run_full_scan_sequence(fresh_column(values), self.queries())
        verify_runs_agree(adaptive, full)
        assert len(adaptive.stats) == 2
        assert adaptive.accumulated_seconds > 0

    def test_disagreement_raises(self):
        a = SequenceRun(engine="a", total_rows=10)
        b = SequenceRun(engine="b", total_rows=11)
        with pytest.raises(AssertionError):
            verify_runs_agree(a, b)


class TestSeriesHelpers:
    def test_moving_average(self):
        assert moving_average([1, 1, 4, 4], window=2) == [1, 1, 2.5, 4]

    def test_moving_average_window_one(self):
        assert moving_average([3, 2, 1], window=1) == [3, 2, 1]

    def test_moving_average_empty(self):
        assert moving_average([]) == []

    def _stats(self, sim_ms_values):
        return [QueryStats(lo=0, hi=1, sim_ns=v * 1e6) for v in sim_ms_values]

    def test_phase_means(self):
        stats = self._stats([1, 1, 2, 2, 3, 3, 4, 4, 5, 5])
        assert phase_means(stats, phases=5) == [1, 2, 3, 4, 5]

    def test_phase_means_short_series(self):
        stats = self._stats([2, 4])
        assert phase_means(stats, phases=5) == [2, 4]

    def test_phase_means_empty(self):
        assert phase_means([], phases=5) == []

"""Smoke tests for the wall-clock perf microbenchmarks."""

import json

from repro.bench.perf import render_perf, run_perf, write_perf_json

REQUIRED_BENCHES = {"scan", "view_creation", "maintenance_batch", "maps_snapshot"}


def test_run_perf_small_scale(tmp_path):
    payload = run_perf(num_pages=64, iterations=1)
    assert payload["pages"] == 64
    names = {r["name"] for r in payload["results"]}
    assert names == REQUIRED_BENCHES
    for result in payload["results"]:
        assert result["reference_s"] > 0
        assert result["fast_s"] > 0
        assert result["speedup"] > 0
        assert result["throughput"] > 0

    path = tmp_path / "BENCH_perf.json"
    write_perf_json(payload, str(path))
    assert json.loads(path.read_text()) == payload

    report = render_perf(payload)
    for name in REQUIRED_BENCHES:
        assert name in report


def test_perf_cli_writes_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "perf.json"
    assert (
        main(["perf", "--pages", "64", "--iterations", "1", "--json", str(out)])
        == 0
    )
    payload = json.loads(out.read_text())
    assert {r["name"] for r in payload["results"]} == REQUIRED_BENCHES
    assert "speedup" in capsys.readouterr().out


def test_render_perf_warns_on_regressions():
    payload = {
        "pages": 64,
        "iterations": 1,
        "results": [
            {"name": "scan", "reference_s": 1.0, "fast_s": 2.0,
             "speedup": 0.5, "throughput": 32, "unit": "pages/s"},
            {"name": "maps_snapshot", "reference_s": 1.0, "fast_s": 0.5,
             "speedup": 2.0, "throughput": 128, "unit": "snapshots/s"},
        ],
    }
    report = render_perf(payload)
    assert (
        "WARNING: scan fast path slower than reference (0.50x)" in report
    )
    assert report.count("WARNING") == 1


def test_render_perf_silent_without_regressions():
    payload = {
        "pages": 64,
        "iterations": 1,
        "results": [
            {"name": "scan", "reference_s": 1.0, "fast_s": 0.5,
             "speedup": 2.0, "throughput": 128, "unit": "pages/s"},
        ],
    }
    assert "WARNING" not in render_perf(payload)

"""Smoke tests for the wall-clock perf microbenchmarks."""

import json

from repro.bench.perf import render_perf, run_perf, write_perf_json

REQUIRED_BENCHES = {"scan", "view_creation", "maintenance_batch", "maps_snapshot"}


def test_run_perf_small_scale(tmp_path):
    payload = run_perf(num_pages=64, iterations=1)
    assert payload["pages"] == 64
    names = {r["name"] for r in payload["results"]}
    assert names == REQUIRED_BENCHES
    for result in payload["results"]:
        assert result["reference_s"] > 0
        assert result["fast_s"] > 0
        assert result["speedup"] > 0
        assert result["throughput"] > 0

    path = tmp_path / "BENCH_perf.json"
    write_perf_json(payload, str(path))
    assert json.loads(path.read_text()) == payload

    report = render_perf(payload)
    for name in REQUIRED_BENCHES:
        assert name in report


def test_perf_cli_writes_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "perf.json"
    assert (
        main(["perf", "--pages", "64", "--iterations", "1", "--json", str(out)])
        == 0
    )
    payload = json.loads(out.read_text())
    assert {r["name"] for r in payload["results"]} == REQUIRED_BENCHES
    assert "speedup" in capsys.readouterr().out


def test_render_perf_warns_on_regressions():
    payload = {
        "pages": 64,
        "iterations": 1,
        "results": [
            {"name": "scan", "reference_s": 1.0, "fast_s": 2.0,
             "speedup": 0.5, "throughput": 32, "unit": "pages/s"},
            {"name": "maps_snapshot", "reference_s": 1.0, "fast_s": 0.5,
             "speedup": 2.0, "throughput": 128, "unit": "snapshots/s"},
        ],
    }
    report = render_perf(payload)
    assert (
        "WARNING: scan fast path slower than reference (0.50x)" in report
    )
    assert report.count("WARNING") == 1


def test_render_perf_silent_without_regressions():
    payload = {
        "pages": 64,
        "iterations": 1,
        "results": [
            {"name": "scan", "reference_s": 1.0, "fast_s": 0.5,
             "speedup": 2.0, "throughput": 128, "unit": "pages/s"},
        ],
    }
    assert "WARNING" not in render_perf(payload)


def test_sharded_scan_payload_shape():
    from repro.bench.perf import bench_sharded_scan

    section = bench_sharded_scan(
        num_pages=64, iterations=1, shard_counts=(1, 2, 4), queries=4
    )
    assert section["pages"] == 64
    assert [e["shards"] for e in section["entries"]] == [1, 2, 4]
    for entry in section["entries"]:
        assert entry["seconds"] > 0
        assert entry["speedup_vs_1"] > 0
        assert entry["efficiency"] == entry["speedup_vs_1"] / entry["shards"]
        assert entry["pages_scanned_per_pass"] >= 0
    # All shard counts returned the same rows (checked internally too).
    assert len({e["rows"] for e in section["entries"]}) == 1


def test_sharded_scan_skips_counts_beyond_pages():
    from repro.bench.perf import bench_sharded_scan

    section = bench_sharded_scan(
        num_pages=2, iterations=1, shard_counts=(1, 2, 4), queries=2
    )
    assert [e["shards"] for e in section["entries"]] == [1, 2]


def test_run_perf_includes_sharded_section(tmp_path):
    payload = run_perf(num_pages=64, iterations=1, shard_counts=(1, 2))
    assert "sharded_scan" in payload
    assert [e["shards"] for e in payload["sharded_scan"]["entries"]] == [1, 2]
    report = render_perf(payload)
    assert "Sharded scan" in report
    path = tmp_path / "BENCH_perf.json"
    write_perf_json(payload, str(path))
    assert json.loads(path.read_text()) == payload


def test_run_perf_can_disable_sharded_section():
    payload = run_perf(num_pages=64, iterations=1, shard_counts=())
    assert "sharded_scan" not in payload


def test_render_perf_warns_on_sharded_slowdown():
    payload = {
        "pages": 64,
        "iterations": 1,
        "results": [],
        "sharded_scan": {
            "pages": 64,
            "backend": "simulated",
            "iterations": 1,
            "queries": 4,
            "selectivity": 0.02,
            "parallel": False,
            "entries": [
                {"shards": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
                 "efficiency": 1.0, "queries": 4, "rows": 10,
                 "pages_scanned_per_pass": 64},
                {"shards": 2, "seconds": 2.0, "speedup_vs_1": 0.5,
                 "efficiency": 0.25, "queries": 4, "rows": 10,
                 "pages_scanned_per_pass": 64},
            ],
        },
    }
    report = render_perf(payload)
    assert (
        "WARNING: sharded scan at 2 shards slower than 1 shard (0.50x)"
        in report
    )


def test_render_perf_shows_paper_scale_line():
    payload = {
        "pages": 64,
        "iterations": 1,
        "results": [],
        "paper_scale": {
            "pages": 1_048_576,
            "shards": 8,
            "backend": "native",
            "build_seconds": 12.5,
            "scan_seconds": 0.75,
            "queries": 8,
            "rows": 123,
            "pages_scanned_per_pass": 1_000_000,
            "pages_per_second": 1_333_333.0,
        },
    }
    report = render_perf(payload)
    assert "Paper scale" in report
    assert "1,048,576 pages" in report


def test_perf_cli_shard_flags(tmp_path):
    from repro.cli import main

    out = tmp_path / "perf.json"
    assert (
        main(
            ["perf", "--pages", "64", "--iterations", "1",
             "--shards", "2", "--json", str(out)]
        )
        == 0
    )
    payload = json.loads(out.read_text())
    assert [e["shards"] for e in payload["sharded_scan"]["entries"]] == [1, 2]

    out2 = tmp_path / "perf2.json"
    assert (
        main(
            ["perf", "--pages", "64", "--iterations", "1",
             "--shards", "0", "--json", str(out2)]
        )
        == 0
    )
    assert "sharded_scan" not in json.loads(out2.read_text())


def test_perf_cli_shards_default_from_env(tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_SHARDS", "2")
    out = tmp_path / "perf.json"
    assert (
        main(["perf", "--pages", "64", "--iterations", "1",
              "--json", str(out)])
        == 0
    )
    payload = json.loads(out.read_text())
    assert [e["shards"] for e in payload["sharded_scan"]["entries"]] == [1, 2]

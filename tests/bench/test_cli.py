"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("fig2", "fig3", "fig4", "fig5", "table1", "fig6",
                        "fig7", "ablations", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--pages", "512", "--queries", "40", "--out", "x.txt"]
        )
        assert args.pages == 512
        assert args.queries == 40
        assert args.out == "x.txt"


class TestMain:
    def test_fig2_runs_and_prints(self, capsys):
        assert main(["fig2", "--pages", "256"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "finished in" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--pages", "256"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_out_file_written(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["fig2", "--pages", "256", "--out", str(out_file)]) == 0
        assert "Figure 2" in out_file.read_text()

    def test_fig5_respects_query_count(self, capsys):
        assert main(["fig5", "--pages", "512", "--queries", "30"]) == 0
        assert "30 queries" in capsys.readouterr().out

    def test_analytic_command(self, capsys):
        assert main(["analytic"]) == 0
        assert "paper-scale predictions" in capsys.readouterr().out

    def test_export_then_regress(self, capsys, tmp_path):
        out = tmp_path / "suite"
        assert main(
            ["export", str(out), "--pages", "256", "--queries", "15"]
        ) == 0
        assert (out / "manifest.json").exists()
        capsys.readouterr()
        # identical suites: regress passes with exit code 0
        assert main(["regress", str(out), str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regress_detects_changes(self, capsys, tmp_path):
        import json

        a = tmp_path / "a"
        assert main(["export", str(a), "--pages", "256", "--queries", "15"]) == 0
        b = tmp_path / "b"
        b.mkdir()
        for path in a.iterdir():
            (b / path.name).write_text(path.read_text())
        fig6 = json.loads((b / "fig6.json").read_text())
        fig6["points"][0]["elapsed_ms"] *= 3
        (b / "fig6.json").write_text(json.dumps(fig6))
        capsys.readouterr()
        assert main(["regress", str(a), str(b)]) == 1
        assert "regressed" in capsys.readouterr().out


class TestBackendsCommand:
    def test_backends_registered(self):
        args = build_parser().parse_args(["backends"])
        assert args.command == "backends"

    def test_backends_reports_both_backends(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "substrate backends" in out
        assert "simulated : available" in out
        assert "native    :" in out
        assert "fast paths :" in out
        assert "observe    :" in out

    def test_backends_matches_is_supported(self, capsys):
        from repro.native import is_supported

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        expected = "available" if is_supported() else "unavailable"
        assert f"native    : {expected}" in out

    def test_backends_reflects_fastpath_toggle(self, capsys, monkeypatch):
        from repro import fastpath

        previous = fastpath.set_enabled(False)
        try:
            assert main(["backends"]) == 0
            assert "fast paths : off" in capsys.readouterr().out
        finally:
            fastpath.set_enabled(previous)

"""Tests for the ablation experiments."""

import pytest

from repro.bench.ablations import (
    run_advisor_ablation,
    run_autoflush_ablation,
    run_drift_ablation,
    run_max_views_ablation,
    run_routing_ablation,
    run_tolerance_ablation,
)


class TestToleranceAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tolerance_ablation(
            tolerances=(0, 64), num_pages=512, num_queries=40
        )

    def test_sweep_shape(self, result):
        assert result.name == "tolerance"
        assert [p.label for p in result.points] == ["d=r=0", "d=r=64"]

    def test_higher_tolerance_never_keeps_more_views(self, result):
        strict, loose = result.points
        assert loose.views_created <= strict.views_created

    def test_all_points_ran_queries(self, result):
        for point in result.points:
            assert point.accumulated_s > 0
            assert point.total_pages_scanned > 0


class TestMaxViewsAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_max_views_ablation(limits=(0, 4, 64), num_pages=512, num_queries=40)

    def test_limits_respected(self, result):
        for point, limit in zip(result.points, (0, 4, 64)):
            assert point.views_created <= limit

    def test_zero_views_means_pure_full_scans(self, result):
        zero = result.points[0]
        assert zero.views_created == 0

    def test_more_views_scan_fewer_pages(self, result):
        zero, _, many = result.points
        assert many.total_pages_scanned < zero.total_pages_scanned

    def test_more_views_is_faster(self, result):
        zero, _, many = result.points
        assert many.accumulated_s < zero.accumulated_s


class TestAutoflushAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_autoflush_ablation(
            thresholds=(1, 64, 1024), num_pages=512, num_updates=400
        )

    def test_batching_amortizes_parsing(self, result):
        per_update = result.points[0]
        batched = result.points[-1]
        assert batched.accumulated_s < per_update.accumulated_s / 3

    def test_monotone_improvement(self, result):
        times = [p.accumulated_s for p in result.points]
        assert times == sorted(times, reverse=True)


class TestDriftAblation:
    def test_generous_limit_wins_under_drift(self):
        result = run_drift_ablation(
            limits=(5, 100), num_pages=512, num_queries=60
        )
        tight, loose, tight_lru = result.points
        assert tight.label == "max=5"
        assert loose.label == "max=100"
        assert tight_lru.label == "max=5+lru"
        assert loose.accumulated_s <= tight.accumulated_s
        assert loose.views_created >= tight.views_created
        # the LRU extension rescues the tight limit
        assert tight_lru.accumulated_s <= tight.accumulated_s


class TestAdvisorAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_advisor_ablation(num_pages=512, num_queries=60)

    def test_three_strategies(self, result):
        assert [p.label for p in result.points] == [
            "full_scan", "adaptive", "advised_static",
        ]

    def test_views_beat_full_scans_on_hotspots(self, result):
        by_label = {p.label: p for p in result.points}
        assert (
            by_label["adaptive"].accumulated_s
            < by_label["full_scan"].accumulated_s
        )
        assert (
            by_label["advised_static"].accumulated_s
            < by_label["full_scan"].accumulated_s
        )

    def test_adaptive_is_competitive_with_perfect_knowledge(self, result):
        """Online adaptation lands within 3x of the offline optimum
        despite having no workload foresight."""
        by_label = {p.label: p for p in result.points}
        assert (
            by_label["adaptive"].accumulated_s
            < 3 * by_label["advised_static"].accumulated_s
        )


class TestRoutingAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_routing_ablation(num_pages=512, num_queries=40)

    def test_all_modes_ran(self, result):
        assert [p.label for p in result.points] == ["single", "multi", "multi_cost"]
        for point in result.points:
            assert point.accumulated_s > 0

    def test_cost_based_scans_no_more_than_naive_multi(self, result):
        by_label = {p.label: p for p in result.points}
        assert (
            by_label["multi_cost"].total_pages_scanned
            <= by_label["multi"].total_pages_scanned
        )

"""Unit tests for the shared experiment renderers."""

import pytest

from repro.bench.ablations import run_max_views_ablation
from repro.bench.fig2 import run_fig2
from repro.bench.fig3 import run_fig3
from repro.bench.fig4 import run_fig4
from repro.bench.fig5 import run_fig5
from repro.bench.fig6 import run_fig6
from repro.bench.fig7 import run_fig7
from repro.bench import render
from repro.bench.table1 import build_table1

PAGES = 256


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(num_pages=PAGES, num_queries=20)


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(num_pages=PAGES, num_queries=20)


class TestRenderers:
    def test_fig2(self):
        text = render.render_fig2(run_fig2(num_pages=PAGES))
        assert "Figure 2" in text
        assert "sine" in text and "sparse" in text

    def test_fig3(self):
        text = render.render_fig3(run_fig3(num_pages=PAGES, ks=[12_500, 100_000]))
        assert "Figure 3" in text
        for variant in render.FIG3_VARIANTS:
            assert variant in text

    def test_fig4(self, fig4_result):
        text = render.render_fig4(fig4_result)
        assert "Figure 4" in text
        assert "speedup" in text
        assert "sparse" in text

    def test_fig5(self, fig5_result):
        text = render.render_fig5(fig5_result)
        assert "Figure 5" in text
        assert "max views/query" in text

    def test_table1(self, fig4_result, fig5_result):
        text = render.render_table1(build_table1(fig4_result, fig5_result))
        assert "Table 1" in text
        assert "paper factor" in text
        assert "58.6" in text  # the paper's number appears

    def test_fig6(self):
        text = render.render_fig6(run_fig6(num_pages=PAGES))
        assert "Figure 6" in text
        assert "coalesce" in text and "thread" in text

    def test_fig7(self):
        text = render.render_fig7(run_fig7(num_pages=PAGES))
        assert "Figure 7" in text
        assert "rebuild" in text

    def test_ablation(self):
        result = run_max_views_ablation(limits=(0, 8), num_pages=PAGES, num_queries=10)
        text = render.render_ablation(result, title="demo sweep")
        assert text.startswith("demo sweep")
        assert "max=0" in text

    def test_ablation_default_title(self):
        result = run_max_views_ablation(limits=(0,), num_pages=PAGES, num_queries=5)
        assert "Ablation — max_views" in render.render_ablation(result)

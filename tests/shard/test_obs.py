"""Sharded observability: truthful per-shard metrics, gather spans,
and the observation-is-free contract."""

from __future__ import annotations

import json

import numpy as np

from repro.obs import trace_to_chrome
from repro.shard import ShardedDatabase
from repro.vm.constants import VALUES_PER_PAGE

NUM_ROWS = 16 * VALUES_PER_PAGE


def _values(seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 100_000, size=NUM_ROWS, dtype=np.int64
    )


def _run_workload(db: ShardedDatabase) -> None:
    db.create_table("t", {"x": _values()})
    for lo in (0, 25_000, 60_000):
        db.query("t", "x", lo, lo + 5_000)
    db.update("t", "x", 0, 5)
    db.flush_updates("t", "x")


class TestShardMetricsTruthfulness:
    def test_shard_scan_counters_sum_to_routed_scans(self):
        with ShardedDatabase(shards=4, observe=True) as db:
            db.create_table("t", {"x": _values()})
            routed = 0
            for lo in (0, 25_000, 60_000):
                result = db.query("t", "x", lo, lo + 5_000)
                assert result.stats.result_rows >= 0
                routed += len(
                    db.column("t", "x").router.shards_for_range(
                        lo, lo + 5_000
                    )
                )
            m = db.observer.metrics
            scans = m.get("shard_scans_total")
            total = sum(value for _, value in scans.samples())
            assert total == routed
            # Each sample carries the shard it came from.
            labels = {dict(key).get("shard") for key, _ in scans.samples()}
            assert labels <= {"0", "1", "2", "3"}

    def test_gather_fanout_matches_router(self):
        with ShardedDatabase(shards=4, observe=True) as db:
            db.create_table("t", {"x": _values()})
            db.query("t", "x", 0, 5_000)
            m = db.observer.metrics
            gathers = m.get("shard_gathers_total")
            assert sum(v for _, v in gathers.samples()) == 1

    def test_flush_metrics_carry_shard_label(self):
        with ShardedDatabase(shards=2, observe=True) as db:
            _run_workload(db)
            m = db.observer.metrics
            flushes = m.get("shard_flushes_total")
            assert sum(v for _, v in flushes.samples()) >= 1
            labels = {dict(key).get("shard") for key, _ in flushes.samples()}
            assert labels <= {"0", "1"}


class TestShardSpans:
    def test_gather_and_scan_spans_reach_chrome_export(self):
        with ShardedDatabase(shards=2, observe=True) as db:
            _run_workload(db)
            tracer = db.observer.tracer
            names = [span.name for span in tracer.finished_spans()]
            assert "shard.gather" in names
            assert "shard.scan" in names
            trace = json.loads(trace_to_chrome(tracer))
            events = trace["traceEvents"]
            gathers = [
                e for e in events if e.get("name") == "shard.gather"
            ]
            scans = [e for e in events if e.get("name") == "shard.scan"]
            assert gathers and scans
            # The gather span reports its fan-out and merged row count.
            assert all("attr.shards" in e["args"] for e in gathers)
            assert all("attr.rows" in e["args"] for e in gathers)
            assert all("attr.shard" in e["args"] for e in scans)

    def test_timeline_charges_main_plus_per_shard_lanes(self):
        with ShardedDatabase(shards=2, observe=True) as db:
            db.create_table("t", {"x": _values()})
            db.query("t", "x", 0, 100_000)  # routes to both shards
            lanes, _ = db.timeline.ledger.snapshot()
            assert lanes.get("main", 0) > 0
            assert lanes.get("shard0", 0) > 0
            assert lanes.get("shard1", 0) > 0
            # Serialized fan-out: the main lane is the sum of shard lanes.
            assert lanes["main"] == lanes["shard0"] + lanes["shard1"]


class TestObservationIsFree:
    def test_shard_ledgers_identical_with_and_without_observer(self):
        def merged(observe: bool):
            with ShardedDatabase(shards=2, observe=observe) as db:
                _run_workload(db)
                return db.merged_cost()

        assert merged(False) == merged(True)

"""Sharded-vs-single parity: same results, same views, same cost story.

Three contracts:

* **Oracle parity** — at any shard count, queries return exactly the
  rows a numpy oracle predicts, and the union of partial-view pages
  tracks what the unsharded layer would map (modulo partition seams).
* **Identity at shards=1** — a single-shard column replaying a workload
  is *bit-identical* in simulated cost to an unsharded
  :class:`~repro.core.adaptive.AdaptiveStorageLayer` session: same
  per-query ``sim_ns``, same full ledger (lanes and counters).  Fuzzed
  over seeds.
* **Interleaving independence** — ``parallel=True`` and sequential
  execution produce identical results and identical merged ledgers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.shard import ShardedColumn, ShardedDatabase
from repro.vm.constants import VALUES_PER_PAGE
from repro.workloads.distributions import DEFAULT_DOMAIN

NUM_PAGES = 24
NUM_ROWS = NUM_PAGES * VALUES_PER_PAGE
DOMAIN = DEFAULT_DOMAIN[1]


def _workload(seed: int, queries: int = 12) -> list[tuple[str, int, int]]:
    """A deterministic mixed query/update workload."""
    rng = np.random.default_rng(seed)
    ops: list[tuple[str, int, int]] = []
    for _ in range(queries):
        if rng.random() < 0.3:
            row = int(rng.integers(0, NUM_ROWS))
            value = int(rng.integers(0, DOMAIN))
            ops.append(("update", row, value))
        else:
            lo = int(rng.integers(0, DOMAIN))
            hi = min(lo + int(rng.integers(0, DOMAIN // 4)), DOMAIN)
            ops.append(("query", lo, hi))
    return ops


def _oracle_query(values, lo, hi):
    rowids = np.nonzero((values >= lo) & (values <= hi))[0]
    return rowids, values[rowids]


@pytest.mark.parametrize("num_shards", [1, 2, 4])
class TestOracleParity:
    def test_queries_match_numpy_oracle(self, num_shards):
        rng = np.random.default_rng(3)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        with ShardedColumn.build("t", values, num_shards) as column:
            oracle = values.copy()
            for op in _workload(seed=17, queries=16):
                if op[0] == "update":
                    _, row, value = op
                    column.update(row, value)
                    oracle[row] = value
                else:
                    _, lo, hi = op
                    result = column.query(lo, hi)
                    want_rows, want_vals = _oracle_query(oracle, lo, hi)
                    order = np.argsort(result.rowids)
                    assert np.array_equal(result.rowids[order], want_rows)
                    assert np.array_equal(result.values[order], want_vals)
            assert not column.audit().findings

    def test_scan_matches_numpy_oracle(self, num_shards):
        rng = np.random.default_rng(5)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        with ShardedColumn.build("t", values, num_shards) as column:
            for lo, hi in [(0, DOMAIN // 10), (DOMAIN // 2, DOMAIN)]:
                result = column.scan(lo, hi)
                want_rows, want_vals = _oracle_query(values, lo, hi)
                order = np.argsort(result.rowids)
                assert np.array_equal(result.rowids[order], want_rows)
                assert np.array_equal(result.values[order], want_vals)

    def test_view_page_union_covers_single_path_pages(self, num_shards):
        """Global page ids behind partial views stay within the pages the
        unsharded layer maps for the same query, modulo the partition
        seams (a shard clips its views at its own page range)."""
        rng = np.random.default_rng(7)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        lo, hi = DOMAIN // 4, DOMAIN // 2

        with AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False)
        ) as db:
            db.create_table("t", {"x": values})
            for _ in range(4):
                db.query("t", "x", lo, hi)
            layer = db.layer("t", "x")
            single_pages = set()
            for view in layer.view_index.partial_views:
                single_pages.update(int(p) for p in view.mapped_fpages())

        with ShardedColumn.build(
            "t",
            values,
            num_shards,
            config=AdaptiveConfig(background_mapping=False),
        ) as column:
            for _ in range(4):
                column.query(lo, hi)
            sharded_pages = column.partial_view_page_union()

        if num_shards == 1:
            assert sharded_pages == single_pages
        else:
            # Sharding can only shrink a view's page set (each shard sees
            # a prefix/suffix of the qualifying pages), never invent
            # pages the single layer would not map.
            assert sharded_pages <= single_pages

    def test_merged_cost_is_a_stable_total(self, num_shards):
        """Replaying the same workload twice yields the same merged
        ledger — and so does replaying it with parallel gather."""

        def run(parallel: bool):
            rng = np.random.default_rng(3)
            values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
            with ShardedColumn.build(
                "t", values, num_shards, parallel=parallel
            ) as column:
                for op in _workload(seed=23):
                    if op[0] == "update":
                        column.update(op[1], op[2])
                    else:
                        column.query(op[1], op[2])
                if column.pending_update_count:
                    column.flush_updates()
                return column.merged_cost()

        sequential = run(parallel=False)
        again = run(parallel=False)
        threaded = run(parallel=True)
        assert sequential == again
        assert sequential == threaded


class TestSingleShardIdentity:
    """shards=1 must be bit-identical to the unsharded stack."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_ledger_bit_identity_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        config = AdaptiveConfig(background_mapping=False)

        with AdaptiveDatabase(config=config) as db:
            db.create_table("t", {"x": values})
            single_stats = []
            for op in _workload(seed=seed + 100):
                if op[0] == "update":
                    db.update("t", "x", op[1], op[2])
                else:
                    result = db.query("t", "x", op[1], op[2])
                    single_stats.append(result.stats.sim_ns)
            if len(db.table("t").pending_updates("x")):
                db.flush_updates("t", "x")
            single_ledger = db.cost.ledger.snapshot()

        with ShardedColumn.build("t.x", values, 1, config=config) as column:
            sharded_stats = []
            for op in _workload(seed=seed + 100):
                if op[0] == "update":
                    column.update(op[1], op[2])
                else:
                    result = column.query(op[1], op[2])
                    sharded_stats.append(result.stats.sim_ns)
            if column.pending_update_count:
                column.flush_updates()
            sharded_ledger = column.shards[0].cost.ledger.snapshot()

        assert sharded_stats == single_stats
        assert sharded_ledger == single_ledger

    def test_no_pruning_at_one_shard(self):
        """Out-of-range predicates still scan — like the unsharded path."""
        values = np.arange(NUM_ROWS, dtype=np.int64)
        with ShardedColumn.build("t", values, 1) as column:
            result = column.query(NUM_ROWS + 10, NUM_ROWS + 20)
            assert result.stats.pages_scanned > 0
            assert result.stats.result_rows == 0

    def test_pruning_skips_shards_at_many(self):
        values = np.arange(NUM_ROWS, dtype=np.int64)
        with ShardedColumn.build("t", values, 4) as column:
            narrow = column.scan(0, 10)
            assert narrow.stats.pages_scanned <= NUM_PAGES // 4 + 1
            out = column.query(NUM_ROWS * 2, NUM_ROWS * 3)
            assert out.stats.pages_scanned == 0
            assert out.stats.result_rows == 0


class TestShardedDatabaseParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_database_matches_unsharded_results(self, num_shards):
        rng = np.random.default_rng(9)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        config = AdaptiveConfig(background_mapping=False)

        with AdaptiveDatabase(config=config) as single, ShardedDatabase(
            shards=num_shards, config=config
        ) as sharded:
            single.create_table("t", {"x": values})
            sharded.create_table("t", {"x": values})
            for op in _workload(seed=31):
                if op[0] == "update":
                    single.update("t", "x", op[1], op[2])
                    sharded.update("t", "x", op[1], op[2])
                else:
                    a = single.query("t", "x", op[1], op[2])
                    b = sharded.query("t", "x", op[1], op[2])
                    order_a = np.argsort(a.rowids)
                    order_b = np.argsort(b.rowids)
                    assert np.array_equal(
                        a.rowids[order_a], b.rowids[order_b]
                    )
                    assert np.array_equal(
                        a.values[order_a], b.values[order_b]
                    )
            assert not sharded.audit().findings

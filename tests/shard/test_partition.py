"""Partition planner and router: properties and boundary behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import ShardRouter, plan_partition
from repro.shard.partition import check_partition, shard_of_row
from repro.vm.constants import VALUES_PER_PAGE


class TestPlanPartition:
    def test_single_shard_covers_everything(self):
        specs = plan_partition(10_000, VALUES_PER_PAGE, 1)
        assert len(specs) == 1
        assert specs[0].row_start == 0
        assert specs[0].row_end == 10_000
        assert not check_partition(specs, 10_000, VALUES_PER_PAGE)

    def test_rejects_more_shards_than_pages(self):
        with pytest.raises(ValueError):
            plan_partition(VALUES_PER_PAGE, VALUES_PER_PAGE, 2)

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            plan_partition(1000, VALUES_PER_PAGE, 0)

    @given(
        num_rows=st.integers(1, 200 * VALUES_PER_PAGE),
        num_shards=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_is_disjoint_exhaustive_page_aligned(
        self, num_rows, num_shards
    ):
        num_pages = -(-num_rows // VALUES_PER_PAGE)
        if num_shards > num_pages:
            with pytest.raises(ValueError):
                plan_partition(num_rows, VALUES_PER_PAGE, num_shards)
            return
        specs = plan_partition(num_rows, VALUES_PER_PAGE, num_shards)
        assert not check_partition(specs, num_rows, VALUES_PER_PAGE)
        # Even split: page counts differ by at most one.
        page_counts = [spec.num_pages for spec in specs]
        assert max(page_counts) - min(page_counts) <= 1

    @given(
        num_rows=st.integers(1, 200 * VALUES_PER_PAGE),
        num_shards=st.integers(1, 16),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_shard_of_row_matches_spec_ranges(
        self, num_rows, num_shards, data
    ):
        num_pages = -(-num_rows // VALUES_PER_PAGE)
        if num_shards > num_pages:
            return
        specs = plan_partition(num_rows, VALUES_PER_PAGE, num_shards)
        row = data.draw(st.integers(0, num_rows - 1))
        spec = shard_of_row(specs, row)
        assert spec.row_start <= row < spec.row_end

    def test_shard_of_row_rejects_out_of_range(self):
        specs = plan_partition(1000, VALUES_PER_PAGE, 1)
        with pytest.raises(IndexError):
            shard_of_row(specs, 1000)
        with pytest.raises(IndexError):
            shard_of_row(specs, -1)


class TestCheckPartition:
    def test_detects_gap(self):
        from dataclasses import replace

        specs = plan_partition(10 * VALUES_PER_PAGE, VALUES_PER_PAGE, 2)
        broken = [
            specs[0],
            replace(
                specs[1],
                row_start=specs[1].row_start + VALUES_PER_PAGE,
                page_start=specs[1].page_start + 1,
            ),
        ]
        assert check_partition(broken, 10 * VALUES_PER_PAGE, VALUES_PER_PAGE)

    def test_detects_truncated_tail(self):
        specs = plan_partition(10 * VALUES_PER_PAGE, VALUES_PER_PAGE, 2)
        assert check_partition(
            specs[:1], 10 * VALUES_PER_PAGE, VALUES_PER_PAGE
        )


class TestShardRouter:
    def test_routes_only_intersecting_shards(self):
        router = ShardRouter([(0, 99), (100, 199), (200, 299)])
        assert router.shards_for_range(0, 99) == [0]
        assert router.shards_for_range(150, 250) == [1, 2]
        assert router.shards_for_range(0, 300) == [0, 1, 2]
        assert router.shards_for_range(500, 600) == []

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            ShardRouter([(10, 5)])

    def test_widen_then_tighten_round_trips(self):
        router = ShardRouter([(100, 200)])
        router.widen(0, 500)
        assert router.shards_for_range(400, 600) == [0]
        router.tighten(0, 100, 200)
        assert router.shards_for_range(400, 600) == []

    @given(
        bounds=st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)).map(
                lambda pair: (min(pair), max(pair))
            ),
            min_size=1,
            max_size=8,
        ),
        lo=st.integers(-100, 10_100),
        width=st.integers(0, 2_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_pruning_is_conservative_at_boundaries(self, bounds, lo, width):
        """A shard is skipped only when it provably holds no match.

        The property covers exact-boundary predicates (``hi == mn`` and
        ``lo == mx`` must route to the shard) because ``lo``/``width``
        sweep across the bound endpoints.
        """
        router = ShardRouter(bounds)
        hi = lo + width
        routed = set(router.shards_for_range(lo, hi))
        for index, (mn, mx) in enumerate(bounds):
            overlaps = mn <= hi and mx >= lo
            assert (index in routed) == overlaps

    def test_routed_shards_match_data_with_real_partition(self):
        """Routing over a built partition never loses a matching row."""
        rng = np.random.default_rng(11)
        values = rng.integers(0, 100_000, size=20 * VALUES_PER_PAGE)
        specs = plan_partition(values.size, VALUES_PER_PAGE, 4)
        slices = [values[s.row_start : s.row_end] for s in specs]
        router = ShardRouter.from_slices(slices)
        for lo, hi in [(0, 1_000), (50_000, 50_500), (99_000, 100_000)]:
            routed = set(router.shards_for_range(lo, hi))
            for spec, part in zip(specs, slices):
                has_match = bool(((part >= lo) & (part <= hi)).any())
                if has_match:
                    assert spec.index in routed

"""ShardedDatabase facade: schema, tombstones, auto-flush, resilience."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.resilience.policy import HealthState, ResilienceConfig
from repro.shard import ShardedDatabase
from repro.vm.constants import VALUES_PER_PAGE

NUM_ROWS = 16 * VALUES_PER_PAGE


def _values(seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 100_000, size=NUM_ROWS, dtype=np.int64
    )


class TestSchema:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedDatabase(shards=0)

    def test_rejects_duplicate_table(self):
        with ShardedDatabase(shards=2) as db:
            db.create_table("t", {"x": _values()})
            with pytest.raises(ValueError):
                db.create_table("t", {"x": _values()})

    def test_columns_share_the_shard_substrates(self):
        with ShardedDatabase(shards=2) as db:
            db.create_table("t", {"x": _values(), "y": _values(4)})
            for i in range(2):
                assert (
                    db.column("t", "x").shards[i].substrate
                    is db.column("t", "y").shards[i].substrate
                )

    def test_unknown_lookups_raise(self):
        with ShardedDatabase() as db:
            db.create_table("t", {"x": _values()})
            with pytest.raises(KeyError):
                db.table("nope")
            with pytest.raises(KeyError):
                db.column("t", "nope")


class TestTombstones:
    def test_delete_hides_rows_from_query_and_scan(self):
        values = _values()
        with ShardedDatabase(shards=4) as db:
            db.create_table("t", {"x": values})
            deleted = db.delete("t", "x", 0, 10_000)
            want = int(((values >= 0) & (values <= 10_000)).sum())
            assert deleted == want
            assert len(db.query("t", "x", 0, 10_000).rowids) == 0
            assert len(db.scan("t", "x", 0, 10_000).rowids) == 0
            # Rows outside the deleted range survive.
            rest = db.query("t", "x", 10_001, 100_000)
            assert len(rest.rowids) == NUM_ROWS - want

    def test_update_of_deleted_row_raises(self):
        values = np.arange(NUM_ROWS, dtype=np.int64)
        with ShardedDatabase(shards=2) as db:
            db.create_table("t", {"x": values})
            db.delete("t", "x", 0, 0)
            with pytest.raises(KeyError):
                db.update("t", "x", 0, 42)


class TestAutoFlush:
    def test_threshold_triggers_per_column_flush(self):
        values = np.arange(NUM_ROWS, dtype=np.int64)
        with ShardedDatabase(shards=2, auto_flush_threshold=4) as db:
            db.create_table("t", {"x": values})
            column = db.column("t", "x")
            for i in range(3):
                db.update("t", "x", i, i + 1)
            assert column.pending_update_count == 3
            db.update("t", "x", 3, 4)
            assert column.pending_update_count == 0

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            ShardedDatabase(auto_flush_threshold=0)


class TestAudit:
    def test_clean_session_audits_clean(self):
        with ShardedDatabase(shards=4) as db:
            db.create_table("t", {"x": _values()})
            for lo in range(0, 100_000, 20_000):
                db.query("t", "x", lo, lo + 5_000)
            report = db.audit()
            assert not report.findings
            assert report.checks > 0

    def test_broken_router_bounds_are_found(self):
        with ShardedDatabase(shards=4) as db:
            db.create_table("t", {"x": _values()})
            column = db.column("t", "x")
            # Corrupt shard 2's bounds so they no longer cover its data.
            column.router.tighten(2, 0, 0)
            report = db.audit()
            assert any(
                f.invariant == "shard-router-bounds" for f in report.findings
            )

    def test_broken_partition_is_found(self):
        from dataclasses import replace

        with ShardedDatabase(shards=2) as db:
            db.create_table("t", {"x": _values()})
            column = db.column("t", "x")
            shard = column.shards[1]
            shard.spec = replace(
                shard.spec, row_start=shard.spec.row_start + VALUES_PER_PAGE
            )
            report = db.audit()
            assert any(
                f.invariant == "shard-partition" for f in report.findings
            )


class TestResilience:
    def test_mapping_budget_is_sliced_across_shards(self):
        config = ResilienceConfig(mapping_budget=40)
        with ShardedDatabase(shards=4, resilience=config) as db:
            db.create_table("t", {"x": _values()})
            for shard in db.column("t", "x").shards:
                assert shard.layer.resilience is not None
                assert (
                    shard.layer.resilience.config.mapping_budget == 10
                )

    def test_single_shard_keeps_config_untouched(self):
        config = ResilienceConfig(mapping_budget=40)
        with ShardedDatabase(shards=1, resilience=config) as db:
            db.create_table("t", {"x": _values()})
            shard = db.column("t", "x").shards[0]
            assert shard.layer.resilience.config is config

    def test_health_aggregates_worst_shard(self):
        with ShardedDatabase(shards=2) as db:
            db.create_table("t", {"x": _values()})
            assert db.health() is HealthState.HEALTHY
            status = db.resilience_status()
            assert status["health"] == "healthy"

    def test_status_keys_name_every_shard(self):
        with ShardedDatabase(
            shards=2, resilience=ResilienceConfig()
        ) as db:
            db.create_table("t", {"x": _values()})
            status = db.resilience_status()
            assert set(status["layers"]) == {
                "t.x[shard0]",
                "t.x[shard1]",
            }

    def test_repair_converges_on_clean_session(self):
        with ShardedDatabase(shards=2) as db:
            db.create_table("t", {"x": _values()})
            db.update("t", "x", 0, 5)
            assert db.repair()
            assert db.column("t", "x").pending_update_count == 0


class TestMergedCost:
    def test_merged_cost_sums_shard_ledgers(self):
        with ShardedDatabase(shards=2) as db:
            db.create_table("t", {"x": _values()})
            db.query("t", "x", 0, 50_000)
            lanes, counters = db.merged_cost()
            assert lanes.get("main", 0) > 0
            want_lanes = {}
            for substrate in db.substrates:
                for lane, ns in substrate.cost.ledger.snapshot()[0].items():
                    want_lanes[lane] = want_lanes.get(lane, 0.0) + ns
            assert lanes == want_lanes

"""Sharded execution under injected faults: results never diverge.

Each shard's substrate is wrapped in a
:class:`~repro.faults.plane.FaultySubstrate` with its own seeded
probabilistic schedule (derived through
:func:`~repro.bench.harness.session_seed`, so the sweep replays from the
environment).  With resilience armed the faulted session must keep
matching the fault-free numpy oracle query for query; afterwards a
repair must converge and the audit must come back clean.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import session_seed
from repro.core.config import AdaptiveConfig
from repro.faults import FaultSchedule, FaultySubstrate
from repro.resilience.policy import ResilienceConfig
from repro.shard import ShardedColumn
from repro.substrate import make_substrate
from repro.vm.constants import VALUES_PER_PAGE
from repro.workloads.distributions import DEFAULT_DOMAIN

NUM_ROWS = 16 * VALUES_PER_PAGE
DOMAIN = DEFAULT_DOMAIN[1]

#: Retryable rewiring ops the sweep injects transient failures into.
FAULT_OPS = ("map_fixed", "unmap")


def _faulty_factory(probability: float, sweep_seed: int):
    """One FaultySubstrate per shard, schedules decorrelated per shard."""
    substrates: list[FaultySubstrate] = []

    def factory(index: int) -> FaultySubstrate:
        substrate = FaultySubstrate(
            make_substrate("simulated"),
            schedule=FaultSchedule.probabilistic(
                FAULT_OPS,
                probability=probability,
                seed=session_seed(shard=index) + sweep_seed,
            ),
        )
        substrates.append(substrate)
        return substrate

    return factory, substrates


def _mixed_ops(seed: int, count: int = 20):
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.25:
            ops.append(
                ("update", int(rng.integers(0, NUM_ROWS)),
                 int(rng.integers(0, DOMAIN)))
            )
        elif roll < 0.35:
            ops.append(("flush",))
        else:
            lo = int(rng.integers(0, DOMAIN))
            hi = min(lo + int(rng.integers(0, DOMAIN // 3)), DOMAIN)
            ops.append(("query", lo, hi))
    return ops


@pytest.mark.parametrize("num_shards", [2, 4])
@pytest.mark.parametrize("sweep_seed", [0, 1, 2])
def test_faulted_sharded_results_match_oracle(num_shards, sweep_seed):
    rng = np.random.default_rng(41)
    values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
    oracle = values.copy()
    factory, substrates = _faulty_factory(
        probability=0.05, sweep_seed=sweep_seed
    )

    with ShardedColumn.build(
        "t",
        values,
        num_shards,
        config=AdaptiveConfig(background_mapping=False),
        substrate_factory=factory,
        resilience=ResilienceConfig(max_attempts=6),
    ) as column:
        for step, op in enumerate(_mixed_ops(seed=sweep_seed + 50)):
            if op[0] == "update":
                _, row, value = op
                column.update(row, value)
                oracle[row] = value
            elif op[0] == "flush":
                if column.pending_update_count:
                    column.flush_updates()
            else:
                _, lo, hi = op
                result = column.query(lo, hi)
                want = np.nonzero((oracle >= lo) & (oracle <= hi))[0]
                order = np.argsort(result.rowids)
                assert np.array_equal(result.rowids[order], want), (
                    f"step {step}: query [{lo}, {hi}] diverged "
                    f"({result.rowids.size} vs {want.size} rows)"
                )
                assert np.array_equal(result.values[order], oracle[want])

        # The schedules must at least have been consulted (most cells of
        # the sweep grid also fire; firing per cell is seed-dependent).
        assert all(
            s.schedule.total_calls > 0 for s in substrates if s.schedule
        )
        # Disarm injection, then the recovery oracle: repair converges
        # and the audit is clean.
        for substrate in substrates:
            substrate.schedule = None
        assert column.repair()
        report = column.audit()
        assert not report.findings, report.findings


def test_faulted_run_is_deterministic():
    """The same sweep seed replays to the same fault journal."""

    def run() -> list[tuple[str, int]]:
        rng = np.random.default_rng(41)
        values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
        factory, substrates = _faulty_factory(probability=0.1, sweep_seed=9)
        with ShardedColumn.build(
            "t",
            values,
            2,
            config=AdaptiveConfig(background_mapping=False),
            substrate_factory=factory,
            resilience=ResilienceConfig(max_attempts=6),
        ) as column:
            for op in _mixed_ops(seed=77):
                if op[0] == "update":
                    column.update(op[1], op[2])
                elif op[0] == "flush":
                    if column.pending_update_count:
                        column.flush_updates()
                else:
                    column.query(op[1], op[2])
            return [
                (fault.op, fault.call_index)
                for substrate in substrates
                if substrate.schedule
                for fault in substrate.schedule.journal
            ]

    assert run() == run()


def test_per_shard_schedules_are_decorrelated():
    """Shard 0 and shard 1 draw from different fault streams."""
    factory, substrates = _faulty_factory(probability=0.5, sweep_seed=0)
    factory(0), factory(1)
    hits = []
    for substrate in substrates:
        hits.append(
            [substrate.schedule.check("map_fixed") is not None
             for _ in range(64)]
        )
    assert hits[0] != hits[1]

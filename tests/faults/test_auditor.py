"""Unit tests for the invariant auditor: it passes on healthy state and
catches each class of deliberately planted corruption."""

import numpy as np

from repro.audit import InvariantAuditor, run_audited_session
from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase


def _grown_db(num_pages: int = 8, queries: int = 8):
    rng = np.random.default_rng(21)
    values = rng.integers(0, 1_000_000, size=num_pages * 512, dtype=np.int64)
    db = AdaptiveDatabase(config=AdaptiveConfig(background_mapping=False))
    db.create_table("t", {"x": values})
    for _ in range(queries):
        lo = int(rng.integers(0, 900_000))
        db.query("t", "x", lo, lo + 60_000)
    return db


def _some_partial(db):
    layer = db.layer("t", "x")
    partials = [v for v in layer.view_index.partial_views if v.num_pages > 0]
    assert partials, "session did not grow a partial view"
    return layer, partials[0]


class TestHealthyState:
    def test_clean_database_passes(self):
        with _grown_db() as db:
            report = db.audit()
        assert report.ok
        assert report.checks > 0
        assert report.mapped_pages > 0
        assert any(v["full"] for v in report.views)

    def test_pending_updates_skip_semantics_only(self):
        with _grown_db() as db:
            db.update("t", "x", 0, 999_999)  # pending, not flushed
            report = db.audit()
            assert report.ok
            assert not report.semantics_checked
            db.flush_updates("t", "x")
            report = db.audit()
            assert report.ok
            assert report.semantics_checked

    def test_audited_sessions_pass_on_all_fault_levels(self):
        for level in ("none", "light", "heavy"):
            result = run_audited_session(
                num_pages=16, num_queries=12, faults=level, seed=2
            )
            assert result.ok, result.render()
        assert result.faults  # the heavy schedule certainly fired


class TestPlantedCorruption:
    def test_detects_lost_mapping(self):
        """A page unmapped behind the catalog's back is found."""
        with _grown_db() as db:
            layer, view = _some_partial(db)
            fpage = int(view.mapped_fpages()[0])
            db.substrate.unmap_slot(view.vpn_of(fpage))
            report = db.audit()
        assert not report.ok
        assert {f.invariant for f in report.findings} >= {"snapshot-agreement"}

    def test_detects_wrong_page_set(self):
        """A structurally clean view with the wrong page set is found."""
        with _grown_db() as db:
            layer, view = _some_partial(db)
            fpage = int(view.mapped_fpages()[0])
            view.remove_page(fpage)  # clean removal, semantically wrong
            report = db.audit()
        assert not report.ok
        assert any(
            f.invariant == "semantic-page-set" for f in report.findings
        )

    def test_detects_torn_catalog(self):
        """Slot bookkeeping that disagrees with itself is found."""
        with _grown_db() as db:
            layer, view = _some_partial(db)
            view._num_mapped += 1  # claim a page that is not there
            view._mapped_cache = None
            report = db.audit()
        assert not report.ok
        assert any(
            f.invariant == "catalog-bijection" for f in report.findings
        )

    def test_detects_corrupted_page_id(self):
        """A clobbered embedded pageID header is found."""
        with _grown_db() as db:
            layer, view = _some_partial(db)
            fpage = int(view.mapped_fpages()[0])
            layer.column.file.set_page_id(fpage, fpage + 1)
            report = InvariantAuditor().audit_layer(
                layer, check_semantics=False
            )
        assert not report.ok
        assert any(f.invariant == "page-id" for f in report.findings)

    def test_report_render_mentions_findings(self):
        with _grown_db() as db:
            layer, view = _some_partial(db)
            db.substrate.unmap_slot(view.vpn_of(int(view.mapped_fpages()[0])))
            report = db.audit()
        text = report.render()
        assert "FAIL" in text
        assert "snapshot-agreement" in text

"""Crash-recovery coverage: checkpoint, fault, restore, verify.

The sequence the PR's acceptance criterion names: take a snapshot, hit
the running database with faults mid-flush, restore from the snapshot —
the auditor must pass on the restored database and its query results
must match a fault-free oracle.  Restores themselves are also run under
fault schedules: a fault while rebuilding one view skips that view but
never corrupts the restored catalog.
"""

import numpy as np

from repro.core.checkpoint import load_database, save_database
from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.core.stats import ViewEvent
from repro.faults import (
    FaultRule,
    FaultSchedule,
    FaultySubstrate,
)
from repro.substrate import make_substrate
from repro.workloads.distributions import DEFAULT_DOMAIN, sine

NUM_PAGES = 16
DOMAIN = DEFAULT_DOMAIN[1]


def _values(seed: int = 31) -> np.ndarray:
    # Clustered values: narrow ranges hit few pages, so the adaptive
    # layer actually retains partial views at this tiny scale.
    return sine(NUM_PAGES, seed=seed)


def _grow(db, rng, queries=10):
    for _ in range(queries):
        lo = int(rng.integers(0, DOMAIN - DOMAIN // 12))
        db.query("t", "x", lo, lo + DOMAIN // 12)


def _oracle_query(values, lo, hi):
    mask = (values >= lo) & (values <= hi)
    return np.nonzero(mask)[0], values[mask]


class TestCheckpointRecovery:
    def test_fault_mid_flush_then_restore(self, tmp_path):
        values = _values()
        rng = np.random.default_rng(5)
        path = str(tmp_path / "ckpt.npz")

        substrate = FaultySubstrate(make_substrate("simulated"))
        with AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False), backend=substrate
        ) as db:
            db.create_table("t", {"x": values})
            _grow(db, rng)
            assert db.layer("t", "x").view_index.num_partials > 0
            save_database(db, path)
            checkpointed = db.table("t").column("x").values().copy()

            # Crash plane: every maps parse and every rewire now fails.
            substrate.schedule = FaultSchedule(
                [
                    FaultRule(ops="maps_snapshot", probability=1.0),
                    FaultRule(ops="map_fixed", probability=1.0),
                ],
                seed=1,
            )
            for _ in range(8):
                db.update(
                    "t", "x",
                    int(rng.integers(0, values.size)),
                    int(rng.integers(0, DOMAIN)),
                )
            stats = db.flush_updates("t", "x")
            assert stats.faults > 0  # the flush really was hit
            assert db.audit().ok  # degraded (views dropped), not corrupt

        # Restore from the snapshot taken before the crash.
        with load_database(path) as restored:
            report = restored.audit()
            assert report.ok, report.render()
            for _ in range(6):
                lo = int(rng.integers(0, DOMAIN - DOMAIN // 10))
                hi = lo + DOMAIN // 10
                result = restored.query("t", "x", lo, hi)
                want_rows, want_vals = _oracle_query(checkpointed, lo, hi)
                order = np.argsort(result.rowids)
                assert np.array_equal(result.rowids[order], want_rows)
                assert np.array_equal(result.values[order], want_vals)

    def test_restore_rebuilds_warm_views(self, tmp_path):
        values = _values()
        path = str(tmp_path / "ckpt.npz")
        with AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False)
        ) as db:
            db.create_table("t", {"x": values})
            _grow(db, np.random.default_rng(6))
            before = db.layer("t", "x").view_index.num_partials
            assert before > 0
            save_database(db, path)

        with load_database(path) as restored:
            index = restored.layer("t", "x").view_index
            assert index.num_partials == before
            assert restored.audit().ok

    def test_faulted_restore_skips_views_but_stays_consistent(self, tmp_path):
        values = _values()
        path = str(tmp_path / "ckpt.npz")
        with AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False)
        ) as db:
            db.create_table("t", {"x": values})
            _grow(db, np.random.default_rng(7))
            before = db.layer("t", "x").view_index.num_partials
            assert before > 0
            save_database(db, path)

        substrate = FaultySubstrate(
            make_substrate("simulated"),
            schedule=FaultSchedule(
                [FaultRule(ops="map_fixed", probability=0.5)], seed=3
            ),
        )
        with load_database(path, backend=substrate) as restored:
            index = restored.layer("t", "x").view_index
            skipped = [
                e for e in index.history if e.event is ViewEvent.FAULTED
            ]
            assert index.num_partials + len(skipped) == before
            report = restored.audit()
            assert report.ok, report.render()
            # Queries stay correct with or without the skipped views.
            for lo in (0, DOMAIN // 3, 2 * DOMAIN // 3):
                hi = lo + DOMAIN // 10
                result = restored.query("t", "x", lo, hi)
                want_rows, want_vals = _oracle_query(values, lo, hi)
                order = np.argsort(result.rowids)
                assert np.array_equal(result.rowids[order], want_rows)
                assert np.array_equal(result.values[order], want_vals)

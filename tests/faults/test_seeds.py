"""Unit tests for ``REPRO_SEED`` resolution and derivation."""

import numpy as np
import pytest

from repro.bench.harness import session_seed
from repro.seeds import ENV_VAR, base_seed, derive_seed, resolve_seed
from repro.workloads.distributions import sine, uniform
from repro.workloads.queries import fixed_selectivity


class TestBaseSeed:
    def test_default_is_zero(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert base_seed() == 0
        assert session_seed() == 0

    def test_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1234")
        assert base_seed() == 1234
        assert session_seed() == 1234

    @pytest.mark.parametrize("bad", ["x", "1.5", "-1", ""])
    def test_invalid_values_raise(self, monkeypatch, bad):
        monkeypatch.setenv(ENV_VAR, bad)
        with pytest.raises(ValueError, match="REPRO_SEED"):
            base_seed()

    def test_resolve_prefers_explicit_seed(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "99")
        assert resolve_seed(7) == 7
        assert resolve_seed(None) == 99

    def test_derive_seed_is_distinct_per_index(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        derived = [derive_seed(i) for i in range(500)]
        assert len(set(derived)) == len(derived)
        assert derived == [derive_seed(i) for i in range(500)]


class TestGeneratorsFollowTheSeed:
    def test_unseeded_generators_follow_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "42")
        from_env = uniform(4)
        assert np.array_equal(from_env, uniform(4, seed=42))
        monkeypatch.setenv(ENV_VAR, "43")
        assert not np.array_equal(from_env, uniform(4))

    def test_explicit_seed_unaffected_by_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "42")
        pinned = sine(4, seed=7)
        monkeypatch.setenv(ENV_VAR, "43")
        assert np.array_equal(pinned, sine(4, seed=7))

    def test_query_sequences_follow_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "5")
        a = list(fixed_selectivity(num_queries=5, selectivity=0.01))
        assert a == list(fixed_selectivity(num_queries=5, selectivity=0.01, seed=5))
        monkeypatch.setenv(ENV_VAR, "6")
        assert a != list(fixed_selectivity(num_queries=5, selectivity=0.01))

"""Property-based fault-schedule fuzzing (the PR's acceptance suite).

Generated sessions interleave queries, updates, flushes, deletes and
standalone view creations while a seeded :class:`FaultSchedule` injects
substrate failures.  After **every** step the invariant auditor must
pass, and every query result must equal a fault-free numpy oracle — a
fault may cost a view, never a wrong answer.

Knobs (all read once, at collection time):

* ``REPRO_SEED``            — base seed for the whole suite (default 0).
* ``REPRO_FUZZ_SCHEDULES``  — schedules in the bulk sweep (default 200).
* ``REPRO_FUZZ_BACKEND``    — substrate backend to fuzz (default
  ``simulated``; the deep CI job also runs ``native``).
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.core.creation import create_partial_view
from repro.core.facade import AdaptiveDatabase
from repro.faults import (
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultySubstrate,
    SubstrateFault,
)
from repro.resilience import ResilienceConfig
from repro.seeds import derive_seed
from repro.substrate import make_substrate

NUM_PAGES = 8
NUM_ROWS = NUM_PAGES * 512
DOMAIN = 1_000_000

FUZZ_SCHEDULES = int(os.environ.get("REPRO_FUZZ_SCHEDULES", "200"))
FUZZ_BACKEND = os.environ.get("REPRO_FUZZ_BACKEND", "simulated")


class Oracle:
    """Serial fault-free ground truth: a plain numpy column."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = values.copy()
        self.alive = np.ones(values.size, dtype=bool)

    def query(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        mask = self.alive & (self.values >= lo) & (self.values <= hi)
        rowids = np.nonzero(mask)[0]
        return rowids, self.values[rowids]

    def update(self, row: int, value: int) -> None:
        self.values[row] = value

    def delete(self, lo: int, hi: int) -> None:
        mask = self.alive & (self.values >= lo) & (self.values <= hi)
        self.alive[mask] = False


def _heavy_schedule(seed: int) -> FaultSchedule:
    """The sweep's fault program: every injection point, aggressively."""
    return FaultSchedule(
        [
            FaultRule(ops=("reserve", "map_file"), probability=0.08),
            FaultRule(ops="map_fixed", probability=0.08),
            FaultRule(ops="unmap_slot", probability=0.05),
            FaultRule(ops="maps_snapshot", probability=0.10),
            FaultRule(
                ops="maps_snapshot",
                probability=0.10,
                kind=FaultKind.STALE_MAPS,
            ),
        ],
        seed=seed,
    )


def _transient_schedule(seed: int) -> FaultSchedule:
    """A recovery-oriented program: mostly transient faults the retry
    engine can heal, plus permanent rules to force quarantines (a lost
    candidate here, a dropped-on-maintenance view there)."""
    return FaultSchedule(
        [
            FaultRule(ops="map_fixed", probability=0.12),
            FaultRule(
                ops=("reserve", "map_file"), probability=0.05, transient=True
            ),
            FaultRule(ops="unmap_slot", probability=0.06),
            FaultRule(ops="maps_snapshot", probability=0.10),
            FaultRule(
                ops="maps_snapshot",
                probability=0.06,
                kind=FaultKind.STALE_MAPS,
            ),
            FaultRule(ops="map_fixed", probability=0.06, transient=False),
            FaultRule(ops="maps_snapshot", probability=0.08, transient=False),
        ],
        seed=seed,
    )


def _range(rng: np.random.Generator) -> tuple[int, int]:
    width = int(rng.integers(DOMAIN // 100, DOMAIN // 6))
    lo = int(rng.integers(0, DOMAIN - width))
    return lo, lo + width


def _generated_ops(rng: np.random.Generator, count: int) -> list[tuple]:
    ops: list[tuple] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.45:
            ops.append(("query", *_range(rng)))
        elif roll < 0.70:
            ops.append(
                (
                    "update",
                    int(rng.integers(0, NUM_ROWS)),
                    int(rng.integers(0, DOMAIN)),
                )
            )
        elif roll < 0.80:
            ops.append(("flush",))
        elif roll < 0.90:
            ops.append(("create", *_range(rng)))
        else:
            ops.append(("delete", *_range(rng)))
    return ops


def _run_session(
    ops: list[tuple],
    schedule: FaultSchedule | None,
    data_seed: int,
    backend: str = "simulated",
    resilience: ResilienceConfig | None = None,
    status_out: dict | None = None,
) -> int:
    """Run one audited faulted session against the oracle.

    Returns the number of faults that fired.  Asserts, after every
    step, that the auditor passes and query results match the oracle.
    With ``resilience`` armed, the session additionally verifies the
    recovery oracle at the end: a fault-free repair must converge to an
    empty quarantine, pass the audit, and answer every query of the
    session identically to the fault-free serial oracle.
    """
    rng = np.random.default_rng(data_seed)
    values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
    oracle = Oracle(values)
    substrate = FaultySubstrate(make_substrate(backend))

    with AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=substrate,
        resilience=resilience,
    ) as db:
        db.create_table("t", {"x": values})
        layer = db.layer("t", "x")
        substrate.schedule = schedule  # setup above stays fault-free

        for step, op in enumerate(ops):
            if op[0] == "query":
                _, lo, hi = op
                result = db.query("t", "x", lo, hi)
                want_rows, want_vals = oracle.query(lo, hi)
                order = np.argsort(result.rowids)
                got_rows = result.rowids[order]
                got_vals = result.values[order]
                assert np.array_equal(got_rows, want_rows) and np.array_equal(
                    got_vals, want_vals
                ), (
                    f"step {step}: query [{lo}, {hi}] diverged from oracle "
                    f"({got_rows.size} vs {want_rows.size} rows)\n"
                    f"faults so far:\n{substrate.schedule.describe()}"
                    if substrate.schedule
                    else ""
                )
            elif op[0] == "update":
                _, row, value = op
                if not oracle.alive[row]:
                    continue  # updating a tombstoned row raises by design
                db.update("t", "x", row, value)
                oracle.update(row, value)
            elif op[0] == "flush":
                db.flush_updates("t", "x")
            elif op[0] == "create":
                _, lo, hi = op
                if len(db.table("t").pending_updates("x")):
                    db.flush_updates("t", "x")
                try:
                    report = create_partial_view(
                        layer.column, [layer.view_index.full_view], lo, hi
                    )
                except SubstrateFault:
                    pass  # rolled back; the audit below proves it
                else:
                    layer.view_index.insert(report.view)
            elif op[0] == "delete":
                _, lo, hi = op
                db.delete("t", "x", lo, hi)
                oracle.delete(lo, hi)

            audit = db.audit()
            assert audit.ok, (
                f"step {step} ({op[0]}): invariants violated\n{audit.render()}"
                + (
                    f"\nfaults:\n{substrate.schedule.describe()}"
                    if substrate.schedule
                    else ""
                )
            )

        fired = substrate.schedule.faults_fired if substrate.schedule else 0

        if resilience is not None and resilience.enabled:
            # Recovery oracle: with faults disarmed, a repair converges
            # (zero quarantined views), the audit is clean, and every
            # query of the session matches the fault-free oracle again.
            substrate.schedule = None
            assert db.repair(), "end-of-session repair did not converge"
            layer = db.layer("t", "x")
            assert not layer.view_index.quarantine
            audit = db.audit()
            assert audit.ok, f"post-repair audit failed\n{audit.render()}"
            for op in ops:
                if op[0] != "query":
                    continue
                _, lo, hi = op
                result = db.query("t", "x", lo, hi)
                want_rows, want_vals = oracle.query(lo, hi)
                order = np.argsort(result.rowids)
                assert np.array_equal(result.rowids[order], want_rows)
                assert np.array_equal(result.values[order], want_vals)
            if status_out is not None:
                status_out.update(db.resilience_status())
        return fired


OPS_STRATEGY = st.lists(
    st.one_of(
        st.tuples(
            st.just("query"),
            st.integers(0, DOMAIN // 2),
            st.integers(DOMAIN // 2, DOMAIN),
        ),
        st.tuples(
            st.just("update"),
            st.integers(0, NUM_ROWS - 1),
            st.integers(0, DOMAIN),
        ),
        st.tuples(st.just("flush")),
        st.tuples(
            st.just("create"),
            st.integers(0, DOMAIN // 2),
            st.integers(DOMAIN // 2, DOMAIN),
        ),
        st.tuples(
            st.just("delete"),
            st.integers(0, DOMAIN // 4),
            st.integers(DOMAIN // 4, DOMAIN // 2),
        ),
    ),
    min_size=1,
    max_size=16,
)


class TestFaultScheduleProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=OPS_STRATEGY, schedule_seed=st.integers(0, 2**32 - 1))
    def test_faults_never_corrupt_results(self, ops, schedule_seed):
        """∀ op sequences, ∀ fault schedules: audits pass, results match."""
        _run_session(ops, _heavy_schedule(schedule_seed), data_seed=1)

    @settings(max_examples=10, deadline=None)
    @given(data_seed=st.integers(0, 2**32 - 1))
    def test_fault_free_session_is_clean(self, data_seed):
        """The degenerate schedule-less session always passes too."""
        rng = np.random.default_rng(data_seed)
        ops = _generated_ops(rng, 8)
        fired = _run_session(ops, None, data_seed=data_seed)
        assert fired == 0


class TestScheduleSweep:
    def test_bulk_seeded_schedules(self):
        """≥200 distinct seeded schedules (REPRO_FUZZ_SCHEDULES) survive."""
        total_fired = 0
        for i in range(FUZZ_SCHEDULES):
            seed = derive_seed(i)
            rng = np.random.default_rng(seed)
            ops = _generated_ops(rng, 10)
            total_fired += _run_session(
                ops,
                _heavy_schedule(seed),
                data_seed=seed,
                backend=FUZZ_BACKEND,
            )
        # The sweep must actually exercise the fault paths.
        assert total_fired >= FUZZ_SCHEDULES // 4, (
            f"only {total_fired} faults fired across {FUZZ_SCHEDULES} "
            "schedules - the schedule generator is too tame"
        )

    def test_sweep_is_deterministic(self):
        """Replaying one sweep entry fires the identical fault journal."""
        seed = derive_seed(7)
        journals = []
        for _ in range(2):
            rng = np.random.default_rng(seed)
            ops = _generated_ops(rng, 10)
            schedule = _heavy_schedule(seed)
            _run_session(ops, schedule, data_seed=seed)
            journals.append(
                [(f.op, f.kind, f.call_index, f.rule) for f in schedule.journal]
            )
        assert journals[0] == journals[1]


class TestRecoverySweep:
    """Seeded transient-heavy schedules must heal back to the oracle."""

    def test_bulk_transient_recovery(self):
        """Every transient-heavy schedule converges: repair empties the
        quarantine and the healed layer answers like the oracle — and
        the sweep as a whole actually exercised retry and rebuild."""
        count = max(FUZZ_SCHEDULES // 4, 10)
        total_fired = 0
        recovered = 0
        rebuilt = 0
        for i in range(count):
            seed = derive_seed(10_000 + i)
            rng = np.random.default_rng(seed)
            ops = _generated_ops(rng, 10)
            status: dict = {}
            total_fired += _run_session(
                ops,
                _transient_schedule(seed),
                data_seed=seed,
                backend=FUZZ_BACKEND,
                resilience=ResilienceConfig(seed=seed),
                status_out=status,
            )
            for layer_status in status.get("layers", {}).values():
                recovered += layer_status["retries_recovered"]
                rebuilt += layer_status["views_rebuilt"]
        assert total_fired >= count // 4, "transient schedules too tame"
        assert recovered > 0, "no transient fault was ever retried to success"
        assert rebuilt > 0, "no quarantined view was ever rebuilt"

    def test_recovery_is_deterministic(self):
        """Replaying one armed sweep entry fires the identical journal."""
        seed = derive_seed(10_007)
        journals = []
        for _ in range(2):
            rng = np.random.default_rng(seed)
            ops = _generated_ops(rng, 10)
            schedule = _transient_schedule(seed)
            _run_session(
                ops,
                schedule,
                data_seed=seed,
                resilience=ResilienceConfig(seed=seed),
            )
            journals.append(
                [(f.op, f.kind, f.call_index, f.rule) for f in schedule.journal]
            )
        assert journals[0] == journals[1]


def _ledger_of(substrate, ops, seed, resilience=None):
    """The cost-ledger snapshot of one fixed session on ``substrate``."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, DOMAIN, size=NUM_ROWS, dtype=np.int64)
    oracle = Oracle(values)
    with AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False),
        backend=substrate,
        resilience=resilience,
    ) as db:
        db.create_table("t", {"x": values})
        for op in ops:
            if op[0] == "query":
                db.query("t", "x", op[1], op[2])
            elif op[0] == "update":
                if not oracle.alive[op[1]]:
                    continue
                db.update("t", "x", op[1], op[2])
                oracle.update(op[1], op[2])
            elif op[0] == "flush":
                db.flush_updates("t", "x")
            elif op[0] == "delete":
                db.delete("t", "x", op[1], op[2])
                oracle.delete(op[1], op[2])
        return db.cost.ledger.snapshot()


@pytest.mark.skipif(
    FUZZ_BACKEND != "simulated", reason="cost model is simulated-only"
)
class TestCostBitIdentity:
    def test_disarmed_session_matches_bare_substrate(self):
        """The same session with faults disabled is bit-identical in
        simulated cost to running without the fault plane at all."""
        seed = derive_seed(3)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 12)

        bare = _ledger_of(make_substrate("simulated"), ops, seed)
        wrapped = _ledger_of(
            FaultySubstrate(make_substrate("simulated")), ops, seed
        )
        assert wrapped == bare

    def test_disabled_resilience_is_bit_identical(self):
        """A constructed-but-disabled resilience config changes nothing:
        the ledger equals the bare run exactly."""
        seed = derive_seed(3)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 12)

        bare = _ledger_of(make_substrate("simulated"), ops, seed)
        disabled = _ledger_of(
            make_substrate("simulated"),
            ops,
            seed,
            resilience=ResilienceConfig(enabled=False),
        )
        assert disabled == bare

    def test_armed_faultless_resilience_is_free(self):
        """Armed resilience with no faults and no budget never charges:
        retry wrappers, health checks and governor probes are all free,
        so the ledger is bit-identical to the bare run."""
        seed = derive_seed(3)
        rng = np.random.default_rng(seed)
        ops = _generated_ops(rng, 12)

        bare = _ledger_of(make_substrate("simulated"), ops, seed)
        armed = _ledger_of(
            make_substrate("simulated"),
            ops,
            seed,
            resilience=ResilienceConfig(seed=seed),
        )
        assert armed == bare

"""Unit tests for the fault-injection plane and its schedules."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.core.facade import AdaptiveDatabase
from repro.faults import (
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultySubstrate,
    SubstrateFault,
    default_kind,
    suppress_faults,
)
from repro.substrate import make_substrate


def _values(num_pages: int = 8, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1_000_000, size=num_pages * 512, dtype=np.int64)


class TestFaultSchedule:
    def test_nth_call_fires_exactly_once(self):
        schedule = FaultSchedule.nth_call("reserve", 3)
        fired = [schedule.check("reserve") for _ in range(6)]
        assert [f is not None for f in fired] == [
            False, False, True, False, False, False,
        ]
        fault = fired[2]
        assert fault.op == "reserve"
        assert fault.kind is FaultKind.ENOMEM
        assert fault.call_index == 3

    def test_deterministic_replay(self):
        def run():
            schedule = FaultSchedule.probabilistic(
                ("reserve", "map_fixed"), probability=0.3, seed=17
            )
            ops = ["reserve", "map_fixed", "reserve", "map_fixed"] * 25
            return [
                (fault.op, fault.call_index, fault.kind)
                for op in ops
                if (fault := schedule.check(op)) is not None
            ]

        first, second = run(), run()
        assert first == second
        assert first  # p=0.3 over 100 calls certainly fires

    def test_rule_streams_are_independent(self):
        """Appending a rule never shifts an existing rule's stream."""
        ops = ["map_fixed"] * 60

        def fires_of_first_rule(rules):
            schedule = FaultSchedule(rules, seed=5)
            hits = []
            for i, op in enumerate(ops):
                fault = schedule.check(op)
                if fault is not None and fault.rule == 0:
                    hits.append(i)
            return hits

        alone = fires_of_first_rule(
            [FaultRule(ops="map_fixed", probability=0.2)]
        )
        with_extra = fires_of_first_rule(
            [
                FaultRule(ops="map_fixed", probability=0.2),
                FaultRule(ops="map_fixed", probability=0.9),
            ]
        )
        # Per-rule generators are derived from (seed, rule index), so
        # the first rule draws the identical stream either way.
        assert alone == with_extra
        assert alone

    def test_after_skips_initial_calls(self):
        schedule = FaultSchedule(
            [FaultRule(ops="reserve", probability=1.0, after=4)]
        )
        fired = [schedule.check("reserve") is not None for _ in range(6)]
        assert fired == [False, False, False, False, True, True]

    def test_max_fires_caps_probability_rule(self):
        schedule = FaultSchedule(
            [FaultRule(ops="reserve", probability=1.0, max_fires=2)]
        )
        fired = [schedule.check("reserve") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(ops="reserve")  # neither nth nor probability
        with pytest.raises(ValueError):
            FaultRule(ops="reserve", nth=2, probability=0.5)  # both
        with pytest.raises(ValueError):
            FaultRule(ops="reserve", nth=0)
        with pytest.raises(ValueError):
            FaultRule(ops="reserve", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(ops=(), nth=1)

    def test_default_kinds(self):
        assert default_kind("reserve") is FaultKind.ENOMEM
        assert default_kind("map_fixed") is FaultKind.MAP_FIXED_FAIL
        assert default_kind("unmap_slot") is FaultKind.UNMAP_FAIL
        assert default_kind("resize") is FaultKind.CAPACITY
        assert default_kind("maps_snapshot") is FaultKind.MAPS_ERROR


class TestFaultySubstrate:
    def test_injects_typed_fault(self):
        substrate = FaultySubstrate(
            make_substrate("simulated"),
            schedule=FaultSchedule.nth_call("reserve", 1),
        )
        with pytest.raises(SubstrateFault) as excinfo:
            substrate.reserve(4)
        assert excinfo.value.op == "reserve"
        assert excinfo.value.kind == "enomem"
        assert len(substrate.journal) == 1

    def test_fault_fires_before_the_operation(self):
        """An injected fault leaves the inner backend untouched."""
        inner = make_substrate("simulated")
        substrate = FaultySubstrate(
            inner, schedule=FaultSchedule.nth_call("create_file", 1)
        )
        with pytest.raises(SubstrateFault):
            substrate.create_file("col", 4)
        assert inner.files() == []

    def test_capacity_budget(self):
        substrate = FaultySubstrate(
            make_substrate("simulated"), file_page_budget=8
        )
        substrate.create_file("small", 8)
        with pytest.raises(SubstrateFault) as excinfo:
            substrate.create_file("big", 9)
        assert excinfo.value.kind == "capacity"

    def test_store_resize_routes_through_plane(self):
        substrate = FaultySubstrate(
            make_substrate("simulated"), file_page_budget=8
        )
        store = substrate.create_file("col", 4)
        store.resize(8)
        with pytest.raises(SubstrateFault):
            store.resize(9)

    def test_suppression_blocks_fault_and_counters(self):
        schedule = FaultSchedule.nth_call("reserve", 1)
        substrate = FaultySubstrate(make_substrate("simulated"), schedule)
        with substrate.suppressed():
            substrate.reserve(1)  # does not fire, does not count
        assert schedule.counters.get("reserve", 0) == 0
        with pytest.raises(SubstrateFault):
            substrate.reserve(1)  # the first *observed* call still fires

    def test_suppress_faults_on_plain_substrate_is_noop(self):
        plain = make_substrate("simulated")
        with suppress_faults(plain):
            assert plain.reserve(1) >= 0

    def test_stale_maps_returns_previous_snapshot(self):
        substrate = FaultySubstrate(make_substrate("simulated"))
        store = substrate.create_file("col", 2)
        substrate.map_file(2, store)
        path = substrate.file_map_path(store)
        fresh = substrate.maps_snapshot(file_filter=path)
        substrate.schedule = FaultSchedule.nth_call(
            "maps_snapshot", 1, kind=FaultKind.STALE_MAPS
        )
        stale = substrate.maps_snapshot(file_filter=path)
        assert stale is fresh

    def test_stale_maps_without_history_degrades_to_error(self):
        substrate = FaultySubstrate(
            make_substrate("simulated"),
            schedule=FaultSchedule.nth_call(
                "maps_snapshot", 1, kind=FaultKind.STALE_MAPS
            ),
        )
        with pytest.raises(SubstrateFault):
            substrate.maps_snapshot(file_filter="/anything")


def _session_ledger(substrate) -> tuple:
    """One fixed adaptive session; returns the final ledger snapshot."""
    with AdaptiveDatabase(
        config=AdaptiveConfig(background_mapping=False), backend=substrate
    ) as db:
        db.create_table("t", {"x": _values()})
        rng = np.random.default_rng(11)
        for i in range(12):
            lo = int(rng.integers(0, 900_000))
            db.query("t", "x", lo, lo + 50_000)
            if (i + 1) % 4 == 0:
                for _ in range(6):
                    db.update(
                        "t", "x",
                        int(rng.integers(0, 8 * 512)),
                        int(rng.integers(0, 1_000_000)),
                    )
                db.flush_updates("t", "x")
        return db.cost.ledger.snapshot()


class TestCostTransparency:
    def test_unarmed_plane_is_cost_transparent(self):
        """Without a schedule the wrapper never changes simulated cost."""
        bare = _session_ledger(make_substrate("simulated"))
        wrapped = _session_ledger(FaultySubstrate(make_substrate("simulated")))
        assert wrapped == bare

    def test_audit_never_charges_the_ledger(self):
        with AdaptiveDatabase(
            config=AdaptiveConfig(background_mapping=False)
        ) as db:
            db.create_table("t", {"x": _values()})
            for lo in (0, 200_000, 400_000):
                db.query("t", "x", lo, lo + 80_000)
            before = db.cost.ledger.snapshot()
            report = db.audit()
            assert report.ok
            assert report.checks > 0
            assert db.cost.ledger.snapshot() == before

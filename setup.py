"""Setuptools entry point.

A classic setup.py (rather than a PEP 517 build) so that editable
installs work in fully offline environments without the ``wheel``
package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Adaptive storage views in virtual memory (CIDR 2023 reproduction)",
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
